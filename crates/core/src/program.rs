//! The `Program` front-end: one typed entry point for the paper's whole
//! programming model.
//!
//! Figure 1's pitch is that a user writes *four declarative things* — a
//! machine, tensor formats, a tensor index notation statement, and a
//! distribution/schedule — and the system does the rest. [`Program`] is
//! that surface in one builder:
//!
//! ```
//! use spdistal::prelude::*;
//! use spdistal_sparse::{dense_vector, generate};
//!
//! let pieces = 4;
//! let b = generate::banded(64, 5, 0);
//! let mut p = Program::on(Machine::grid1d(pieces, MachineProfile::lassen_cpu()))
//!     .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; 64]))
//!     .tensor("B", Format::blocked_csr(), b)
//!     .tensor("c", Format::replicated_dense_vec(), dense_vector(vec![1.0; 64]))
//!     .stmt("a(i) = B(i,j) * c(j)")
//!     .auto()
//!     .build()
//!     .unwrap();
//! let report = p.run().unwrap().clone();
//! assert_eq!(report.iterations, 1);
//! assert_eq!(report.compiles, 1);
//! assert!(p.result(0).unwrap().time > 0.0);
//! ```
//!
//! [`Program::build`] compiles the declarations into a [`CompiledProgram`]
//! that owns the [`Context`], a **plan cache** keyed by `(statement,
//! schedule, format signature)`, and the deferred-execution drive loop:
//! [`CompiledProgram::run`] submits every statement to a
//! [`Session`](crate::Session) (independent statements overlap; RAW chains
//! cut batches), [`CompiledProgram::run_iters`] repeats the whole program
//! without recompiling anything whose cache key is unchanged, and
//! [`CompiledProgram::report`] surfaces what happened — including every
//! [`AutoDecision`] the auto-scheduler took.
//!
//! ## Auto-scheduling
//!
//! [`ScheduleSpec::Auto`] closes the simplest form of the executor-feedback
//! loop the paper leaves to the user:
//!
//! 1. **Static choice** — from the driver tensor's non-zero statistics: if
//!    the equal outer-dimension blocks' nnz imbalance exceeds
//!    [`STATIC_IMBALANCE`], the statement gets the non-zero distribution of
//!    Section II-D outright; otherwise the Figure-1 outer-dimension
//!    (row/slice) distribution.
//! 2. **Warm-up feedback** — after the first iteration, statements still on
//!    the outer-dimension schedule are re-examined against the *compiled*
//!    plan's modeled partition imbalance ([`SWITCH_IMBALANCE`]) and the
//!    executor's measured counters (task skew above [`SWITCH_TASK_SKEW`]
//!    with real steals): if either says one color gates the launch, the
//!    statement is re-scheduled onto the non-zero distribution for every
//!    subsequent iteration. Each (re)selection is recorded as an
//!    [`AutoDecision`] in [`CompiledProgram::report`].
//!
//! The plan cache makes the re-selection cheap: the old and new schedules
//! key different entries, each compiled exactly once.
//!
//! ## Caching caveat
//!
//! Cache keys capture statements, schedules, and *formats* — not tensor
//! values. Plans embed partitions derived from the driver's sparsity
//! pattern at compile time, so iterating is sound while patterns are
//! stable (dense factor updates, CP-ALS sweeps). If an *input* tensor's
//! pattern changes between iterations, call
//! [`CompiledProgram::clear_plan_cache`].

use std::sync::Arc;
use std::time::Instant;

use spdistal_ir::{parse_tin, tdn, Assignment, Format, ParallelUnit, Schedule, VarCtx};
use spdistal_runtime::pipeline::LaunchTiming;
use spdistal_runtime::{ExecMode, Machine, SplitPolicy, Trace};
use spdistal_sparse::SpTensor;

use crate::api::{schedule_nonzero, schedule_outer_dim};
use crate::codegen::Plan;
use crate::dist_tensor::{Context, Error};
use crate::engine::{PlanCache, PlanKey};
use crate::kernels;
use crate::level_funcs::{equal_coord_bounds, partition_tensor, universe_partition};
use crate::plan::{self, execute_incremental, ExecResult, OutputValue};
use crate::session::{FlushReport, Session};
use crate::streaming::{DirtyMap, IncrementalStats, RetainedOutput, FALLBACK_DIRTY_RATIO};

/// Static auto-scheduling threshold: if the driver's equal outer-dimension
/// blocks carry nnz imbalance above this, [`ScheduleSpec::Auto`] picks the
/// non-zero distribution before ever running.
pub const STATIC_IMBALANCE: f64 = 2.0;

/// Warm-up feedback threshold on the *compiled* outer-dimension plan's
/// modeled partition imbalance: above it, auto re-selects to non-zero.
pub const SWITCH_IMBALANCE: f64 = 1.5;

/// Warm-up feedback threshold on the executor's *measured* task skew
/// (critical color over balanced share); combined with observed steals it
/// re-selects to non-zero even when the modeled imbalance looked mild.
pub const SWITCH_TASK_SKEW: f64 = 1.75;

/// How one statement is mapped onto the machine.
///
/// ```
/// use spdistal::ScheduleSpec;
/// // The default is the auto-scheduler.
/// assert!(matches!(ScheduleSpec::default(), ScheduleSpec::Auto));
/// ```
#[derive(Clone, Debug, Default)]
pub enum ScheduleSpec {
    /// Let the program choose (and re-choose) between the outer-dimension
    /// and non-zero distributions from nnz statistics and executor
    /// feedback. The default.
    #[default]
    Auto,
    /// The row/slice-based distribution of Figure 1 (`pieces` defaults to
    /// the extent of machine dimension 0).
    OuterDim {
        pieces: Option<usize>,
        unit: ParallelUnit,
    },
    /// The non-zero distribution of Section II-D. `driver` defaults to the
    /// first sparse right-hand-side tensor, `depth` to 2 (matrix non-zeros
    /// / 3-tensor tubes), `pieces` to machine dimension 0's extent.
    Nonzero {
        driver: Option<String>,
        depth: Option<usize>,
        pieces: Option<usize>,
        unit: ParallelUnit,
    },
    /// A schedule built by hand with the scheduling-language commands.
    Explicit(Schedule),
}

impl ScheduleSpec {
    /// The outer-dimension distribution with all defaults.
    pub fn outer_dim() -> Self {
        ScheduleSpec::OuterDim {
            pieces: None,
            unit: ParallelUnit::CpuThread,
        }
    }

    /// The non-zero distribution with all defaults.
    pub fn nonzero() -> Self {
        ScheduleSpec::Nonzero {
            driver: None,
            depth: None,
            pieces: None,
            unit: ParallelUnit::CpuThread,
        }
    }
}

/// One auto-scheduler (re)selection, surfaced by
/// [`CompiledProgram::report`].
#[derive(Clone, Debug)]
pub struct AutoDecision {
    /// Statement index within the program.
    pub stmt: usize,
    /// Iteration the decision was taken at (0 = before the first run;
    /// later iterations are warm-up feedback re-selections).
    pub iteration: usize,
    /// The distribution picked: `"outer-dim"` or `"non-zero"`.
    pub choice: &'static str,
    /// Why, in human-readable terms (thresholds and measured values).
    pub reason: String,
}

impl std::fmt::Display for AutoDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stmt {} iter {}: {} ({})",
            self.stmt, self.iteration, self.choice, self.reason
        )
    }
}

/// Per-statement slice of a [`ProgramReport`].
#[derive(Clone, Debug)]
pub struct StmtReport {
    /// The statement, in TIN syntax.
    pub stmt: String,
    /// Which schedule family is currently selected.
    pub schedule_kind: &'static str,
    /// The concrete schedule, in scheduling-language syntax.
    pub schedule: String,
    /// Simulated seconds of the last execution.
    pub time: f64,
    /// Measured compute wall-clock seconds of the last execution.
    pub wall_time: f64,
    /// Measured task skew of the last execution's batch.
    pub task_skew: f64,
}

/// What a [`CompiledProgram`]'s runs did, cumulatively.
#[derive(Clone, Debug, Default)]
pub struct ProgramReport {
    /// Whole-program iterations executed so far.
    pub iterations: usize,
    /// Plans compiled (cache misses) so far.
    pub compiles: usize,
    /// Plan-cache hits so far.
    pub cache_hits: usize,
    /// Real wall-clock seconds summed over every flush.
    pub wall_seconds: f64,
    /// Pipelined batches over all iterations.
    pub batches: usize,
    /// Point tasks executed over all iterations.
    pub tasks: usize,
    /// Spans executed over all iterations.
    pub spans: usize,
    /// Work-stealing steals over all iterations.
    pub steals: usize,
    /// Worker threads used (max over flushes).
    pub threads: usize,
    /// Modeled sequential sum over all flushes (launch-at-a-time charge).
    pub model_seq_sum: f64,
    /// Modeled graph-ordered makespan summed over flushes.
    pub model_makespan: f64,
    /// Per-launch milestones of the most recent iteration.
    pub launches: Vec<LaunchTiming>,
    /// Per-statement state after the most recent iteration.
    pub stmts: Vec<StmtReport>,
    /// Every auto-scheduler decision taken so far, in order.
    pub decisions: Vec<AutoDecision>,
}

impl ProgramReport {
    /// The decisions affecting one statement, in order.
    pub fn decisions_for(&self, stmt: usize) -> impl Iterator<Item = &AutoDecision> {
        self.decisions.iter().filter(move |d| d.stmt == stmt)
    }
}

enum StmtSource {
    Text(String),
    Built(Box<dyn FnOnce(&mut VarCtx) -> Assignment>),
}

struct StmtDecl {
    source: StmtSource,
    spec: ScheduleSpec,
}

/// The typed program builder — see the [module docs](self) for the
/// Figure-1 walkthrough. Declarations are checked at [`Program::build`];
/// builder methods themselves never fail.
pub struct Program {
    machine: Machine,
    exec_mode: ExecMode,
    split: SplitPolicy,
    pipelined: bool,
    trace: Option<Trace>,
    cache: Option<Arc<PlanCache>>,
    tenant: Option<String>,
    tensors: Vec<(String, SpTensor, Format)>,
    dists: Vec<String>,
    stmts: Vec<StmtDecl>,
    errors: Vec<String>,
}

impl Program {
    /// Start a program on `machine` (Figure 1's `Machine M(Grid(pieces))`).
    pub fn on(machine: Machine) -> Self {
        Program {
            machine,
            exec_mode: ExecMode::Serial,
            split: SplitPolicy::Auto,
            pipelined: true,
            trace: None,
            cache: None,
            tenant: None,
            tensors: Vec::new(),
            dists: Vec::new(),
            stmts: Vec::new(),
            errors: Vec::new(),
        }
    }

    /// Share a [`PlanCache`] with other programs: every `(statement,
    /// schedule, formats)` key any sharer compiled is a hit for all of
    /// them. Defaults to a fresh private cache; an
    /// [`Engine`](crate::Engine) wires its shared cache through here.
    pub fn plan_cache(mut self, cache: Arc<PlanCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Label this program's cache traffic with a tenant name: lookups
    /// count under `tenant.<name>.plan_cache.{hit,miss}` on the trace, and
    /// plans it compiles are attributed to it for cross-tenant hit
    /// accounting (see [`PlanCache`]).
    pub fn tenant(mut self, name: &str) -> Self {
        self.tenant = Some(name.to_string());
        self
    }

    /// Attach a structured trace: every flush, launch, span, steal,
    /// plan-cache lookup, and auto-scheduler decision of the compiled
    /// program records into it (see [`spdistal_runtime::obs`]). Without
    /// this call the trace comes from the `SPD_TRACE` environment variable
    /// ([`Trace::from_env`]) and defaults to disabled — a disabled trace
    /// is a no-op handle with near-zero overhead.
    pub fn trace(mut self, trace: Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Declare a tensor with its format (levels + distribution) and data.
    pub fn tensor(mut self, name: &str, format: Format, data: SpTensor) -> Self {
        self.tensors.push((name.to_string(), data, format));
        self
    }

    /// Override a declared tensor's *distribution* with a TDN statement,
    /// e.g. `.dist("B xy (xy->f) -> ~f M")` — the tensor named in the
    /// statement keeps its level formats and gets the parsed distribution.
    pub fn dist(mut self, tdn_stmt: &str) -> Self {
        self.dists.push(tdn_stmt.to_string());
        self
    }

    /// Add a statement in TIN text, e.g. `"a(i) = B(i,j) * c(j)"`. Its
    /// schedule defaults to [`ScheduleSpec::Auto`]; follow with
    /// [`Program::schedule`] or [`Program::auto`] to change it.
    pub fn stmt(mut self, tin: &str) -> Self {
        self.stmts.push(StmtDecl {
            source: StmtSource::Text(tin.to_string()),
            spec: ScheduleSpec::default(),
        });
        self
    }

    /// Add a statement built programmatically against the program's
    /// variable context (the [`Expr`](spdistal_ir::Expr) builders):
    ///
    /// ```
    /// use spdistal::prelude::*;
    /// use spdistal::{access, assign};
    /// # use spdistal_sparse::{dense_vector, generate};
    /// # let b = generate::banded(32, 3, 1);
    /// let p = Program::on(Machine::grid1d(4, MachineProfile::lassen_cpu()))
    ///     # .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; 32]))
    ///     # .tensor("B", Format::blocked_csr(), b)
    ///     # .tensor("c", Format::replicated_dense_vec(), dense_vector(vec![1.0; 32]))
    ///     // ... .tensor(...) declarations ...
    ///     .stmt_with(|vars| {
    ///         let [i, j] = vars.fresh_n(["i", "j"]);
    ///         assign("a", &[i], access("B", &[i, j]) * access("c", &[j]))
    ///     });
    /// # p.build().unwrap().run().unwrap();
    /// ```
    pub fn stmt_with(mut self, build: impl FnOnce(&mut VarCtx) -> Assignment + 'static) -> Self {
        self.stmts.push(StmtDecl {
            source: StmtSource::Built(Box::new(build)),
            spec: ScheduleSpec::default(),
        });
        self
    }

    /// Set the most recently added statement's schedule.
    pub fn schedule(mut self, spec: ScheduleSpec) -> Self {
        match self.stmts.last_mut() {
            Some(decl) => decl.spec = spec,
            None => self.errors.push("schedule() before any stmt()".to_string()),
        }
        self
    }

    /// Let the auto-scheduler pick the most recent statement's mapping
    /// (equivalent to `.schedule(ScheduleSpec::Auto)`; with no statements
    /// yet it is a no-op, since `Auto` is already the default).
    pub fn auto(self) -> Self {
        if self.stmts.is_empty() {
            return self;
        }
        self.schedule(ScheduleSpec::Auto)
    }

    /// Select how leaf kernels execute (default [`ExecMode::Serial`]).
    pub fn exec_mode(mut self, mode: ExecMode) -> Self {
        self.exec_mode = mode;
        self
    }

    /// Select how splittable colors chunk into spans (default
    /// [`SplitPolicy::Auto`]).
    pub fn split_policy(mut self, policy: SplitPolicy) -> Self {
        self.split = policy;
        self
    }

    /// Flush after every statement instead of overlapping a whole
    /// iteration through one deferred flush (the pre-`Session` behavior;
    /// useful for baselines and A/B runs).
    pub fn launch_at_a_time(mut self) -> Self {
        self.pipelined = false;
        self
    }

    /// Check and compile the declarations: materialize every tensor's
    /// initial distribution, parse/build every statement, and return the
    /// executable [`CompiledProgram`]. Schedules are resolved lazily (the
    /// auto-scheduler needs the tensor table), plans on first run.
    pub fn build(self) -> Result<CompiledProgram, Error> {
        if let Some(msg) = self.errors.into_iter().next() {
            return Err(Error::Unsupported(msg));
        }
        let mut tensors = self.tensors;
        for tdn_stmt in &self.dists {
            let parsed = tdn::parse(tdn_stmt)?;
            let decl = tensors
                .iter_mut()
                .find(|(name, ..)| *name == parsed.tensor)
                .ok_or_else(|| Error::UnknownTensor(parsed.tensor.clone()))?;
            decl.2.dist = parsed.dist;
        }
        let trace = self.trace.unwrap_or_else(Trace::from_env);
        let mut ctx = Context::new(self.machine)
            .with_exec_mode(self.exec_mode)
            .with_split_policy(self.split)
            .with_trace(trace);
        for (name, data, format) in tensors {
            ctx.add_tensor(&name, data, format)?;
        }
        let mut stmts = Vec::with_capacity(self.stmts.len());
        for decl in self.stmts {
            let stmt = match decl.source {
                StmtSource::Text(src) => parse_tin(&src, ctx.vars_mut())?,
                StmtSource::Built(build) => build(ctx.vars_mut()),
            };
            stmts.push(ProgramStmt {
                stmt,
                spec: decl.spec,
                chosen: None,
                tuned: false,
            });
        }
        let n = stmts.len();
        Ok(CompiledProgram {
            ctx,
            stmts,
            pipelined: self.pipelined,
            cache: self.cache.unwrap_or_else(PlanCache::shared),
            tenant: self.tenant,
            report: ProgramReport::default(),
            last_results: vec![None; n],
            retained: vec![None; n],
            last_incremental: vec![None; n],
        })
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ChosenKind {
    OuterDim,
    Nonzero,
    Explicit,
}

impl ChosenKind {
    fn label(self) -> &'static str {
        match self {
            ChosenKind::OuterDim => "outer-dim",
            ChosenKind::Nonzero => "non-zero",
            ChosenKind::Explicit => "explicit",
        }
    }
}

struct Chosen {
    kind: ChosenKind,
    schedule: Schedule,
}

struct ProgramStmt {
    stmt: Assignment,
    spec: ScheduleSpec,
    /// The currently selected concrete schedule. Built once per selection,
    /// so its `Display` form (hence the cache key) is stable across
    /// iterations.
    chosen: Option<Chosen>,
    /// Whether the warm-up feedback pass already ran for this statement
    /// (re-selection happens at most once).
    tuned: bool,
}

/// A built program: context + plan cache + drive loop. Created by
/// [`Program::build`]; see the [module docs](self) for the full tour.
pub struct CompiledProgram {
    ctx: Context,
    stmts: Vec<ProgramStmt>,
    pipelined: bool,
    cache: Arc<PlanCache>,
    tenant: Option<String>,
    report: ProgramReport,
    last_results: Vec<Option<ExecResult>>,
    /// Per-statement retained output of the most recent run, with the
    /// version snapshot proving what it was computed from — the merge
    /// base for [`CompiledProgram::run_incremental`].
    retained: Vec<Option<RetainedOutput>>,
    /// Per-statement telemetry of the most recent
    /// [`run_incremental`](CompiledProgram::run_incremental) pass.
    last_incremental: Vec<Option<IncrementalStats>>,
}

impl CompiledProgram {
    /// The underlying compilation context (low-level escape hatch).
    pub fn context(&self) -> &Context {
        &self.ctx
    }

    /// Mutable access to the context — for tensor data updates between
    /// iterations and other low-level needs. Plans already cached stay
    /// keyed on the old declarations; see the module docs' caching caveat.
    pub fn context_mut(&mut self) -> &mut Context {
        &mut self.ctx
    }

    /// Statements in this program.
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }

    /// Select how leaf kernels execute from the next run on.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.ctx.set_exec_mode(mode);
    }

    /// Select the span-splitting policy from the next run on.
    pub fn set_split_policy(&mut self, policy: SplitPolicy) {
        self.ctx.set_split_policy(policy);
    }

    /// Toggle whole-iteration overlap (see [`Program::launch_at_a_time`]).
    pub fn set_pipelined(&mut self, pipelined: bool) {
        self.pipelined = pipelined;
    }

    /// Re-register a tensor under a new format. Cached plans for
    /// statements touching it miss from now on (the format signature is
    /// part of the cache key) and recompile against the new declaration.
    /// Re-registration also drops tracked dirty state for `name` (in the
    /// context) and every retained incremental output of a statement that
    /// reads or writes it — a new level layout re-orders stored values, so
    /// neither is a valid merge base afterwards.
    pub fn set_tensor_format(&mut self, name: &str, format: Format) -> Result<(), Error> {
        self.ctx.set_tensor_format(name, format)?;
        for k in 0..self.stmts.len() {
            if self.stmts[k].stmt.tensor_names().iter().any(|n| n == name) {
                self.retained[k] = None;
            }
        }
        Ok(())
    }

    /// Mutable access to a tensor's values (e.g. the CP-ALS factor-damping
    /// step between sweeps).
    pub fn tensor_data_mut(&mut self, name: &str) -> Result<&mut SpTensor, Error> {
        self.ctx.tensor_data_mut(name)
    }

    /// Apply a batch of coordinate deltas to a registered tensor and track
    /// the touched rows for the next
    /// [`run_incremental`](CompiledProgram::run_incremental) — see
    /// [`Context::update_batch`].
    pub fn update_batch(
        &mut self,
        name: &str,
        deltas: &[crate::streaming::CoordDelta],
    ) -> Result<crate::streaming::UpdateReport, Error> {
        self.ctx.update_batch(name, deltas)
    }

    /// The last run's result for statement `k` (None before the first
    /// run).
    pub fn result(&self, k: usize) -> Option<&ExecResult> {
        self.last_results.get(k)?.as_ref()
    }

    /// The last run's output value for statement `k`.
    pub fn value(&self, k: usize) -> Option<&OutputValue> {
        self.result(k).map(|r| &r.output)
    }

    /// What every run so far did (cache traffic, executor counters,
    /// modeled times, auto-scheduler decisions).
    pub fn report(&self) -> &ProgramReport {
        &self.report
    }

    /// The program's structured trace handle (disabled unless attached via
    /// [`Program::trace`] or the `SPD_TRACE` environment variable).
    pub fn trace(&self) -> &Trace {
        self.ctx.trace()
    }

    /// Write the recorded trace as Chrome trace-event JSON (loadable in
    /// Perfetto / `chrome://tracing`). A no-op `Ok(())` when tracing is
    /// disabled.
    pub fn write_chrome_trace(&self, path: &str) -> std::io::Result<()> {
        self.ctx.trace().write_chrome_trace(path)
    }

    /// One-line JSON run report: event counts, counters, and histogram
    /// quantiles (p50/p95/p99) — grep-friendly for benches and CI.
    pub fn run_report_json(&self, name: &str) -> String {
        self.ctx.trace().run_report_json(name)
    }

    /// Record an auto-scheduler decision in the report *and* on the trace.
    fn push_decision(&mut self, d: AutoDecision) {
        self.ctx
            .trace()
            .auto_decision(d.stmt as u32, d.iteration as u32, d.choice, &d.reason);
        self.report.decisions.push(d);
    }

    /// Drop every cached plan (they recompile on the next run). Needed
    /// only when an *input* tensor's sparsity pattern changed under a
    /// cached plan — see the module docs' caching caveat. On a cache
    /// shared via [`Program::plan_cache`] / [`Engine`](crate::Engine)
    /// this affects every sharer.
    pub fn clear_plan_cache(&mut self) {
        self.cache.clear();
    }

    /// The plan cache this program admits lookups through — private by
    /// default, shared when built via [`Program::plan_cache`] or an
    /// [`Engine`](crate::Engine).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The tenant label attributed to this program's cache traffic, if
    /// any (see [`Program::tenant`]).
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Execute the whole program once. Statements flow through one
    /// deferred [`Session`] flush (unless built
    /// [`launch_at_a_time`](Program::launch_at_a_time)), so independent
    /// statements overlap and RAW chains cut batches exactly as
    /// [`Session`] documents — outputs are bit-identical to launch-at-a-
    /// time serial execution.
    pub fn run(&mut self) -> Result<&ProgramReport, Error> {
        self.run_iters(1)
    }

    /// Execute the whole program `iters` times. Every (statement,
    /// schedule, formats) triple compiles **exactly once** across all
    /// iterations; the auto-scheduler's warm-up feedback runs after the
    /// first iteration and may re-select schedules for the rest.
    pub fn run_iters(&mut self, iters: usize) -> Result<&ProgramReport, Error> {
        self.run_iters_with(iters, |_, _| Ok(()))
    }

    /// [`run_iters`](CompiledProgram::run_iters) with a between-iteration
    /// hook: `hook(ctx, iter)` runs after iteration `iter`'s flush (all
    /// write-backs landed) and before the next iteration — the place for
    /// CP-ALS-style factor updates that feed one sweep into the next:
    ///
    /// ```
    /// # use spdistal::prelude::*;
    /// # use spdistal_sparse::{dense_vector, generate};
    /// # let b = generate::banded(32, 3, 1);
    /// # let mut p = Program::on(Machine::grid1d(4, MachineProfile::lassen_cpu()))
    /// #     .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; 32]))
    /// #     .tensor("B", Format::blocked_csr(), b)
    /// #     .tensor("c", Format::replicated_dense_vec(), dense_vector(vec![1.0; 32]))
    /// #     .stmt("a(i) = B(i,j) * c(j)")
    /// #     .build()
    /// #     .unwrap();
    /// p.run_iters_with(3, |ctx, _iter| {
    ///     // Feed this iteration's output back into the next one's input.
    ///     let a = ctx.tensor("a")?.data.vals().to_vec();
    ///     ctx.tensor_data_mut("c")?.vals_mut().copy_from_slice(&a);
    ///     Ok(())
    /// })
    /// .unwrap();
    /// assert_eq!(p.report().compiles, 1); // still one compile
    /// ```
    pub fn run_iters_with(
        &mut self,
        iters: usize,
        mut hook: impl FnMut(&mut Context, usize) -> Result<(), Error>,
    ) -> Result<&ProgramReport, Error> {
        for _ in 0..iters {
            let iter = self.report.iterations;
            let t0 = Instant::now();
            // Accumulated streamed deltas can invalidate an earlier
            // outer-dim pick even on the full-run path.
            self.drift_reselect()?;
            self.ensure_schedules(iter)?;
            self.execute_once()?;
            self.report.iterations += 1;
            let trace = self.ctx.trace();
            trace.observe_ns("iter_ns", t0.elapsed().as_nanos() as u64);
            trace.add("iterations", 1);
            hook(&mut self.ctx, iter)?;
            if iter == 0 {
                self.warmup_feedback()?;
            }
        }
        Ok(&self.report)
    }

    /// A human-readable dump of the program: statements, current
    /// schedules, cache keys, and the decision log.
    pub fn describe(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "program: {} statement(s) on {:?} procs; plan cache: {} entries, \
             {} compiles, {} hits",
            self.stmts.len(),
            self.ctx.machine().dims(),
            self.cache.len(),
            self.report.compiles,
            self.report.cache_hits,
        );
        for (k, ps) in self.stmts.iter().enumerate() {
            let _ = writeln!(out, "  [{k}] {}", ps.stmt);
            match &ps.chosen {
                Some(c) => {
                    let _ = writeln!(out, "      schedule ({}): {}", c.kind.label(), c.schedule);
                    let _ = writeln!(out, "      cache key: {}", self.cache_key(k));
                }
                None => {
                    let _ = writeln!(out, "      schedule: not yet selected");
                }
            }
            for name in ps.stmt.tensor_names() {
                if let Ok(t) = self.ctx.tensor(&name) {
                    let _ = writeln!(out, "      format {}: {}", name, t.format.signature());
                }
            }
        }
        if !self.report.decisions.is_empty() {
            let _ = writeln!(out, "  auto-scheduler decisions:");
            for d in &self.report.decisions {
                let _ = writeln!(out, "    {d}");
            }
        }
        out
    }

    // ---- schedule selection ---------------------------------------------

    /// The first sparse tensor on the statement's right-hand side — the
    /// operand that drives iteration and decides skew.
    fn sparse_driver(&self, stmt: &Assignment) -> Option<String> {
        stmt.rhs
            .accesses()
            .into_iter()
            .find(|a| {
                self.ctx
                    .tensor(&a.tensor)
                    .map(|t| kernels::is_sparse(&t.data))
                    .unwrap_or(false)
            })
            .map(|a| a.tensor.clone())
    }

    /// nnz imbalance of equal outer-dimension blocks of `name` — the
    /// static statistic behind the auto-scheduler's first pick.
    fn outer_block_imbalance(&self, name: &str, pieces: usize) -> Result<f64, Error> {
        let t = &self.ctx.tensor(name)?.data;
        let bounds = equal_coord_bounds(t.dims()[0], pieces);
        let init = universe_partition(t, 0, &bounds);
        Ok(partition_tensor(t, 0, init).vals.imbalance())
    }

    fn default_pieces(&self) -> usize {
        self.ctx.machine().dim(0)
    }

    fn build_outer_dim(
        ctx: &mut Context,
        stmt: &Assignment,
        pieces: usize,
        unit: ParallelUnit,
    ) -> Chosen {
        Chosen {
            kind: ChosenKind::OuterDim,
            schedule: schedule_outer_dim(ctx, stmt, pieces, unit),
        }
    }

    fn build_nonzero(
        ctx: &mut Context,
        stmt: &Assignment,
        driver: &str,
        depth: usize,
        pieces: usize,
        unit: ParallelUnit,
    ) -> Result<Chosen, Error> {
        Ok(Chosen {
            kind: ChosenKind::Nonzero,
            schedule: schedule_nonzero(ctx, stmt, driver, depth, pieces, unit)?,
        })
    }

    /// Depth of the non-zero split for `driver`: 2 covers matrix non-zeros
    /// and 3-tensor tubes (the evaluation's static load-balancing splits).
    fn nonzero_depth(&self, driver: &str) -> usize {
        self.ctx
            .tensor(driver)
            .map(|t| t.data.order().min(2))
            .unwrap_or(2)
    }

    /// Build the concrete schedule for every statement that does not have
    /// one yet (first run, or after a feedback re-selection cleared it).
    fn ensure_schedules(&mut self, iteration: usize) -> Result<(), Error> {
        let pieces_default = self.default_pieces();
        for k in 0..self.stmts.len() {
            if self.stmts[k].chosen.is_some() {
                continue;
            }
            let stmt = self.stmts[k].stmt.clone();
            let chosen = match self.stmts[k].spec.clone() {
                ScheduleSpec::Explicit(schedule) => Chosen {
                    kind: ChosenKind::Explicit,
                    schedule,
                },
                ScheduleSpec::OuterDim { pieces, unit } => Self::build_outer_dim(
                    &mut self.ctx,
                    &stmt,
                    pieces.unwrap_or(pieces_default),
                    unit,
                ),
                ScheduleSpec::Nonzero {
                    driver,
                    depth,
                    pieces,
                    unit,
                } => {
                    let driver = match driver.or_else(|| self.sparse_driver(&stmt)) {
                        Some(d) => d,
                        None => {
                            return Err(Error::Unsupported(format!(
                                "no sparse driver for non-zero schedule of '{stmt}'"
                            )))
                        }
                    };
                    let depth = depth.unwrap_or_else(|| self.nonzero_depth(&driver));
                    Self::build_nonzero(
                        &mut self.ctx,
                        &stmt,
                        &driver,
                        depth,
                        pieces.unwrap_or(pieces_default),
                        unit,
                    )?
                }
                ScheduleSpec::Auto => self.auto_initial(k, &stmt, pieces_default, iteration)?,
            };
            self.stmts[k].chosen = Some(chosen);
        }
        Ok(())
    }

    /// The auto-scheduler's static pick for statement `k`: non-zero when
    /// the driver's block statistics already show severe skew, Figure 1's
    /// outer-dimension distribution otherwise.
    fn auto_initial(
        &mut self,
        k: usize,
        stmt: &Assignment,
        pieces: usize,
        iteration: usize,
    ) -> Result<Chosen, Error> {
        let unit = ParallelUnit::CpuThread;
        let Some(driver) = self.sparse_driver(stmt) else {
            self.push_decision(AutoDecision {
                stmt: k,
                iteration,
                choice: "outer-dim",
                reason: "no sparse driver on the right-hand side".to_string(),
            });
            return Ok(Self::build_outer_dim(&mut self.ctx, stmt, pieces, unit));
        };
        let imbalance = self.outer_block_imbalance(&driver, pieces)?;
        if imbalance > STATIC_IMBALANCE {
            let depth = self.nonzero_depth(&driver);
            match Self::build_nonzero(&mut self.ctx, stmt, &driver, depth, pieces, unit) {
                Ok(chosen) => {
                    self.push_decision(AutoDecision {
                        stmt: k,
                        iteration,
                        choice: "non-zero",
                        reason: format!(
                            "{driver} row-block nnz imbalance {imbalance:.2}x > {STATIC_IMBALANCE:.2}x"
                        ),
                    });
                    return Ok(chosen);
                }
                Err(e) => {
                    self.push_decision(AutoDecision {
                        stmt: k,
                        iteration,
                        choice: "outer-dim",
                        reason: format!("non-zero schedule unavailable ({e})"),
                    });
                    return Ok(Self::build_outer_dim(&mut self.ctx, stmt, pieces, unit));
                }
            }
        }
        self.push_decision(AutoDecision {
            stmt: k,
            iteration,
            choice: "outer-dim",
            reason: format!(
                "{driver} row-block nnz imbalance {imbalance:.2}x <= {STATIC_IMBALANCE:.2}x"
            ),
        });
        Ok(Self::build_outer_dim(&mut self.ctx, stmt, pieces, unit))
    }

    /// The executor-feedback half of the auto-tuning loop: after the
    /// warm-up iteration, re-examine every `Auto` statement still on the
    /// outer-dimension schedule and switch it to the non-zero distribution
    /// if the compiled plan's modeled imbalance or the executor's measured
    /// skew/steal counters say one color gated the launch.
    fn warmup_feedback(&mut self) -> Result<(), Error> {
        let pieces = self.default_pieces();
        for k in 0..self.stmts.len() {
            let ps = &self.stmts[k];
            if ps.tuned
                || !matches!(ps.spec, ScheduleSpec::Auto)
                || !matches!(
                    ps.chosen.as_ref().map(|c| c.kind),
                    Some(ChosenKind::OuterDim)
                )
            {
                continue;
            }
            let plan_imbalance = self
                .cache
                .peek(&self.cache_key(k))
                .map(|p| p.inputs[0].part.vals.imbalance())
                .unwrap_or(1.0);
            let (task_skew, steals) = self.last_results[k]
                .as_ref()
                .map(|r| (r.sched.task_skew(), r.sched.steals))
                .unwrap_or((1.0, 0));
            let reason = if plan_imbalance > SWITCH_IMBALANCE {
                format!(
                    "warm-up: modeled partition imbalance {plan_imbalance:.2}x > \
                     {SWITCH_IMBALANCE:.2}x"
                )
            } else if task_skew > SWITCH_TASK_SKEW && steals > 0 {
                format!(
                    "warm-up: measured task skew {task_skew:.2}x > {SWITCH_TASK_SKEW:.2}x \
                     with {steals} steals"
                )
            } else {
                self.stmts[k].tuned = true;
                continue;
            };
            let stmt = self.stmts[k].stmt.clone();
            let Some(driver) = self.sparse_driver(&stmt) else {
                self.stmts[k].tuned = true;
                continue;
            };
            let depth = self.nonzero_depth(&driver);
            let unit = ParallelUnit::CpuThread;
            match Self::build_nonzero(&mut self.ctx, &stmt, &driver, depth, pieces, unit) {
                Ok(chosen) => {
                    self.push_decision(AutoDecision {
                        stmt: k,
                        iteration: self.report.iterations,
                        choice: "non-zero",
                        reason,
                    });
                    self.stmts[k].chosen = Some(chosen);
                }
                Err(e) => {
                    self.push_decision(AutoDecision {
                        stmt: k,
                        iteration: self.report.iterations,
                        choice: "outer-dim",
                        reason: format!("{reason}; non-zero schedule unavailable ({e})"),
                    });
                }
            }
            self.stmts[k].tuned = true;
        }
        Ok(())
    }

    // ---- plan cache + execution -----------------------------------------

    /// The cache key of statement `k`'s current selection: statement text,
    /// schedule text, and the format signature of every referenced tensor.
    fn cache_key(&self, k: usize) -> PlanKey {
        let ps = &self.stmts[k];
        let schedule = ps
            .chosen
            .as_ref()
            .map(|c| c.schedule.to_string())
            .unwrap_or_else(|| "<unselected>".to_string());
        let formats: Vec<String> = ps
            .stmt
            .tensor_names()
            .iter()
            .map(|name| match self.ctx.tensor(name) {
                Ok(t) => format!("{name}={}", t.format.signature()),
                Err(_) => format!("{name}=<unknown>"),
            })
            .collect();
        PlanKey::new(ps.stmt.to_string(), schedule, formats.join("; "))
    }

    /// [`PlanCache::lookup`] with this program's trace and tenant label,
    /// folding a hit into the program report.
    fn lookup_plan(&mut self, key: &PlanKey) -> Option<Arc<Plan>> {
        let plan = self
            .cache
            .lookup(key, self.ctx.trace(), self.tenant.as_deref());
        if plan.is_some() {
            self.report.cache_hits += 1;
        }
        plan
    }

    /// Compile statement `k`'s plan unless its key is already cached.
    /// An `Auto` non-zero selection that fails to compile falls back to
    /// the outer-dimension schedule (recorded as a decision).
    fn ensure_plan(&mut self, k: usize) -> Result<Arc<Plan>, Error> {
        let mut key = self.cache_key(k);
        if let Some(plan) = self.lookup_plan(&key) {
            return Ok(plan);
        }
        let chosen = self.stmts[k]
            .chosen
            .as_ref()
            .expect("schedule selected before compile");
        let compiled = self.ctx.compile(&self.stmts[k].stmt, &chosen.schedule);
        let plan = match compiled {
            Ok(plan) => plan,
            Err(e)
                if chosen.kind == ChosenKind::Nonzero
                    && matches!(self.stmts[k].spec, ScheduleSpec::Auto) =>
            {
                // Fall back: the auto-picked non-zero mapping does not
                // lower for this statement; outer-dim always does.
                let stmt = self.stmts[k].stmt.clone();
                let pieces = self.default_pieces();
                let chosen =
                    Self::build_outer_dim(&mut self.ctx, &stmt, pieces, ParallelUnit::CpuThread);
                self.push_decision(AutoDecision {
                    stmt: k,
                    iteration: self.report.iterations,
                    choice: "outer-dim",
                    reason: format!("non-zero plan failed to compile ({e})"),
                });
                self.stmts[k].chosen = Some(chosen);
                self.stmts[k].tuned = true;
                key = self.cache_key(k);
                if let Some(plan) = self.lookup_plan(&key) {
                    return Ok(plan);
                }
                let chosen = self.stmts[k].chosen.as_ref().unwrap();
                self.ctx.compile(&self.stmts[k].stmt, &chosen.schedule)?
            }
            Err(e) => return Err(e),
        };
        self.report.compiles += 1;
        Ok(self.cache.insert(key, plan, self.tenant.as_deref()))
    }

    /// One whole-program pass through a deferred session.
    fn execute_once(&mut self) -> Result<(), Error> {
        for k in 0..self.stmts.len() {
            self.invalidate_structural(k);
        }
        let drivers: Vec<Option<String>> = (0..self.stmts.len())
            .map(|k| self.sparse_driver(&self.stmts[k].stmt))
            .collect();
        let snapshots: Vec<Vec<(String, u64)>> = (0..self.stmts.len())
            .map(|k| self.input_version_snapshot(k, drivers[k].as_deref()))
            .collect();
        let plans: Vec<Arc<Plan>> = (0..self.stmts.len())
            .map(|k| self.ensure_plan(k))
            .collect::<Result<_, _>>()?;

        let mut flushes: Vec<FlushReport> = Vec::new();
        let mut results: Vec<Option<ExecResult>> = vec![None; plans.len()];
        {
            let pipelined = self.pipelined;
            let mut session = Session::new(&mut self.ctx);
            let mut futures = Vec::with_capacity(plans.len());
            for plan in &plans {
                futures.push(session.submit(plan));
                if !pipelined {
                    flushes.push(session.flush()?);
                }
            }
            if pipelined {
                flushes.push(session.flush()?);
            }
            for (k, future) in futures.iter().enumerate() {
                results[k] = Some(session.wait(future)?.clone());
            }
        }
        self.last_results = results;
        for k in 0..self.stmts.len() {
            self.retain_output(k, snapshots[k].clone(), drivers[k].as_deref());
        }
        // A full pass brought every consumer up to date with every tracked
        // delta — dirty state is consumed.
        self.ctx.clear_all_dirty();

        // Fold the iteration into the cumulative report.
        let r = &mut self.report;
        r.launches.clear();
        for f in &flushes {
            r.wall_seconds += f.wall_seconds;
            r.batches += f.batches;
            r.tasks += f.tasks;
            r.spans += f.spans;
            r.steals += f.steals;
            r.threads = r.threads.max(f.threads);
            r.model_seq_sum += f.model_seq_sum();
            r.model_makespan += f.model_makespan();
            r.launches.extend(f.launches.iter().cloned());
        }
        self.update_stmt_reports();
        Ok(())
    }

    /// Refresh [`ProgramReport::stmts`] from the current selections and
    /// `last_results`.
    fn update_stmt_reports(&mut self) {
        self.report.stmts = self
            .stmts
            .iter()
            .zip(&self.last_results)
            .map(|(ps, result)| {
                let chosen = ps.chosen.as_ref();
                StmtReport {
                    stmt: ps.stmt.to_string(),
                    schedule_kind: chosen.map(|c| c.kind.label()).unwrap_or("unselected"),
                    schedule: chosen
                        .map(|c| c.schedule.to_string())
                        .unwrap_or_else(|| "<unselected>".to_string()),
                    time: result.as_ref().map(|r| r.time).unwrap_or(0.0),
                    wall_time: result.as_ref().map(|r| r.wall_time).unwrap_or(0.0),
                    task_skew: result.as_ref().map(|r| r.sched.task_skew()).unwrap_or(0.0),
                }
            })
            .collect();
    }

    // ---- incremental recompute ------------------------------------------

    /// Telemetry of statement `k`'s most recent
    /// [`run_incremental`](CompiledProgram::run_incremental) pass (`None`
    /// before the first incremental run).
    pub fn last_incremental(&self, k: usize) -> Option<&IncrementalStats> {
        self.last_incremental.get(k)?.as_ref()
    }

    /// Versions of every tensor statement `k` *reads* other than the
    /// sparse driver — the snapshot a retained output carries so the next
    /// incremental pass can prove those operands unchanged. The output
    /// tensor is excluded (its version bumps on every write-back).
    fn input_version_snapshot(&self, k: usize, driver: Option<&str>) -> Vec<(String, u64)> {
        let stmt = &self.stmts[k].stmt;
        let out = stmt.lhs.tensor.clone();
        let mut seen: Vec<(String, u64)> = Vec::new();
        for a in stmt.rhs.accesses() {
            if a.tensor == out
                || Some(a.tensor.as_str()) == driver
                || seen.iter().any(|(n, _)| *n == a.tensor)
            {
                continue;
            }
            let version = self.ctx.tensor_version(&a.tensor);
            seen.push((a.tensor.clone(), version));
        }
        seen
    }

    /// Capture statement `k`'s freshly computed output as the next merge
    /// base (no-op before its first result).
    fn retain_output(
        &mut self,
        k: usize,
        input_versions: Vec<(String, u64)>,
        driver: Option<&str>,
    ) {
        let vals = self.last_results[k].as_ref().map(|r| match &r.output {
            OutputValue::Dense(v) => v.clone(),
            OutputValue::Tensor(t) => t.vals().to_vec(),
        });
        self.retain_vals(k, vals, input_versions, driver);
    }

    /// [`CompiledProgram::retain_output`] with the output values already
    /// extracted — the incremental loop uses this to retain straight from
    /// the pass's results without cloning whole `ExecResult`s first.
    fn retain_vals(
        &mut self,
        k: usize,
        vals: Option<Vec<f64>>,
        input_versions: Vec<(String, u64)>,
        driver: Option<&str>,
    ) {
        let Some(vals) = vals else {
            return;
        };
        self.retained[k] = Some(RetainedOutput {
            vals,
            driver_version: driver.map(|d| self.ctx.tensor_version(d)).unwrap_or(0),
            input_versions,
            plan_key: self.cache_key(k).to_string(),
        });
    }

    /// If any tensor statement `k` touches carries *structural* tracked
    /// deltas (inserts/deletes), drop the statement's cached plan — it
    /// embeds partitions derived from the old sparsity pattern — and its
    /// retained output.
    fn invalidate_structural(&mut self, k: usize) {
        let structural = self.stmts[k]
            .stmt
            .tensor_names()
            .iter()
            .any(|n| self.ctx.dirty_state(n).is_some_and(|d| d.structural));
        if structural {
            self.cache.remove(&self.cache_key(k));
            self.retained[k] = None;
        }
    }

    /// The drift half of the auto-tuning loop: accumulated streamed deltas
    /// can skew a driver that was balanced when the outer-dimension
    /// schedule was picked. Re-examine every `Auto` statement still on
    /// outer-dim whose driver carries tracked deltas, and re-select the
    /// non-zero distribution when the *current* row-block nnz imbalance
    /// crosses [`SWITCH_IMBALANCE`].
    fn drift_reselect(&mut self) -> Result<(), Error> {
        let pieces = self.default_pieces();
        for k in 0..self.stmts.len() {
            let ps = &self.stmts[k];
            if !matches!(ps.spec, ScheduleSpec::Auto)
                || !matches!(
                    ps.chosen.as_ref().map(|c| c.kind),
                    Some(ChosenKind::OuterDim)
                )
            {
                continue;
            }
            let stmt = ps.stmt.clone();
            let Some(driver) = self.sparse_driver(&stmt) else {
                continue;
            };
            let deltas = match self.ctx.dirty_state(&driver) {
                Some(d) if d.deltas_applied > 0 => d.deltas_applied,
                _ => continue,
            };
            let imbalance = self.outer_block_imbalance(&driver, pieces)?;
            if imbalance <= SWITCH_IMBALANCE {
                continue;
            }
            let reason = format!(
                "drift: {driver} row-block nnz imbalance {imbalance:.2}x > \
                 {SWITCH_IMBALANCE:.2}x after {deltas} streamed delta(s)"
            );
            let depth = self.nonzero_depth(&driver);
            let unit = ParallelUnit::CpuThread;
            match Self::build_nonzero(&mut self.ctx, &stmt, &driver, depth, pieces, unit) {
                Ok(chosen) => {
                    self.push_decision(AutoDecision {
                        stmt: k,
                        iteration: self.report.iterations,
                        choice: "non-zero",
                        reason,
                    });
                    self.stmts[k].chosen = Some(chosen);
                    // New schedule, new plan key: the retained output is
                    // still numerically valid but keyed to the old plan.
                    self.retained[k] = None;
                }
                Err(e) => {
                    self.push_decision(AutoDecision {
                        stmt: k,
                        iteration: self.report.iterations,
                        choice: "outer-dim",
                        reason: format!("{reason}; non-zero schedule unavailable ({e})"),
                    });
                }
            }
            self.stmts[k].tuned = true;
        }
        Ok(())
    }

    /// Execute the whole program once, re-using each statement's retained
    /// output where the tracked delta state proves it sound: only the
    /// colors whose driver rows intersect the dirty set re-execute, the
    /// rest are served from the retained buffer. Statements that cannot
    /// take the fast path (no retained run yet, structural deltas, an
    /// untracked operand change, a dirty ratio above
    /// [`FALLBACK_DIRTY_RATIO`], a schedule/format change, or a plan with
    /// no in-place output) fall back to a full recompute — either way the
    /// result is bit-identical to [`run`](CompiledProgram::run) on the
    /// same data.
    ///
    /// Statements run launch-at-a-time (no cross-statement overlap);
    /// every pass is trace-instrumented with
    /// `incremental.{runs,rows_dirty,spans_reexecuted,spans_skipped,fallbacks}`
    /// counters and an `Event::IncrementalRun` per statement, and
    /// [`last_incremental`](CompiledProgram::last_incremental) reports
    /// per-statement what happened and why.
    pub fn run_incremental(&mut self) -> Result<&ProgramReport, Error> {
        let iter = self.report.iterations;
        let t0 = Instant::now();
        self.drift_reselect()?;
        self.ensure_schedules(iter)?;
        let n = self.stmts.len();
        for k in 0..n {
            self.invalidate_structural(k);
        }
        let drivers: Vec<Option<String>> = (0..n)
            .map(|k| self.sparse_driver(&self.stmts[k].stmt))
            .collect();
        let snapshots: Vec<Vec<(String, u64)>> = (0..n)
            .map(|k| self.input_version_snapshot(k, drivers[k].as_deref()))
            .collect();

        let mut results: Vec<Option<ExecResult>> = vec![None; n];
        let mut stats_out: Vec<Option<IncrementalStats>> = vec![None; n];
        for k in 0..n {
            let plan = self.ensure_plan(k)?;
            let key_str = self.cache_key(k).to_string();
            let driver = drivers[k].clone();
            let rows_dirty = driver
                .as_deref()
                .and_then(|d| self.ctx.dirty_state(d))
                .map(|td| td.map.dirty_rows())
                .unwrap_or(0);

            // Eligibility: every observable operand must be provably
            // unchanged except value-only deltas on the tracked driver.
            let mut fallback_reason: Option<String> = None;
            let mut dirty = DirtyMap::default();
            let stmt = &self.stmts[k].stmt;
            if stmt
                .rhs
                .accesses()
                .iter()
                .any(|a| a.tensor == stmt.lhs.tensor)
            {
                fallback_reason =
                    Some("output tensor also appears on the right-hand side".to_string());
            }
            if fallback_reason.is_none() {
                match self.retained[k].as_ref() {
                    None => {
                        fallback_reason =
                            Some("no retained output from a previous run".to_string());
                    }
                    Some(ret) if ret.plan_key != key_str => {
                        fallback_reason =
                            Some("schedule or format changed since the retained run".to_string());
                    }
                    Some(ret) => {
                        if let Some((name, v)) = ret
                            .input_versions
                            .iter()
                            .find(|(name, v)| self.ctx.tensor_version(name) != *v)
                        {
                            fallback_reason = Some(format!(
                                "input '{name}' changed (version {} != retained {v})",
                                self.ctx.tensor_version(name)
                            ));
                        } else if let Some(d) = driver.as_deref() {
                            match self.ctx.dirty_state(d) {
                                None if self.ctx.tensor_version(d) != ret.driver_version => {
                                    fallback_reason =
                                        Some(format!("driver '{d}' mutated outside update_batch"));
                                }
                                // Clean driver: empty dirty set, every
                                // color skips.
                                None => {}
                                Some(td) if td.structural => {
                                    fallback_reason =
                                        Some(format!("structural deltas on driver '{d}'"));
                                }
                                Some(td)
                                    if td.from_version != ret.driver_version
                                        || self.ctx.tensor_version(d) != td.tracked_version =>
                                {
                                    fallback_reason = Some(format!(
                                        "driver '{d}' version lineage broken by an untracked \
                                         mutation"
                                    ));
                                }
                                Some(td) if td.map.ratio() > FALLBACK_DIRTY_RATIO => {
                                    fallback_reason = Some(format!(
                                        "dirty ratio {:.2} > {FALLBACK_DIRTY_RATIO:.2}",
                                        td.map.ratio()
                                    ));
                                }
                                Some(td) => dirty = td.map.clone(),
                            }
                        }
                    }
                }
            }

            let stats = if let Some(reason) = fallback_reason {
                let result = plan::execute(&mut self.ctx, &plan)?;
                let spans = result.sched.spans;
                results[k] = Some(result);
                IncrementalStats {
                    stmt: k,
                    rows_dirty,
                    spans_reexecuted: spans,
                    spans_skipped: 0,
                    fallback: true,
                    reason,
                }
            } else {
                // The retained buffer moves into the incremental pass and
                // becomes the shared output allocation; a fresh retained
                // output is captured from the result below either way.
                let retained_vals = self.retained[k].take().unwrap().vals;
                match execute_incremental(&mut self.ctx, &plan, &dirty, retained_vals)? {
                    Some(outcome) => {
                        let stats = IncrementalStats {
                            stmt: k,
                            rows_dirty,
                            spans_reexecuted: outcome.spans_reexecuted,
                            spans_skipped: outcome.spans_skipped,
                            fallback: false,
                            reason: format!(
                                "incremental: {} span(s) re-executed, {} skipped",
                                outcome.spans_reexecuted, outcome.spans_skipped
                            ),
                        };
                        results[k] = Some(outcome.result);
                        stats
                    }
                    None => {
                        let result = plan::execute(&mut self.ctx, &plan)?;
                        let spans = result.sched.spans;
                        results[k] = Some(result);
                        IncrementalStats {
                            stmt: k,
                            rows_dirty,
                            spans_reexecuted: spans,
                            spans_skipped: 0,
                            fallback: true,
                            reason: "plan has no in-place output to merge into".to_string(),
                        }
                    }
                }
            };
            self.ctx.trace().incremental_run(
                k as u32,
                stats.rows_dirty as u64,
                stats.spans_reexecuted as u64,
                stats.spans_skipped as u64,
                stats.fallback,
            );
            stats_out[k] = Some(stats);
            let vals = results[k].as_ref().map(|r| match &r.output {
                OutputValue::Dense(v) => v.clone(),
                OutputValue::Tensor(t) => t.vals().to_vec(),
            });
            self.retain_vals(k, vals, snapshots[k].clone(), drivers[k].as_deref());
        }
        self.last_results = results;
        self.last_incremental = stats_out;
        self.ctx.clear_all_dirty();

        // Fold the pass into the cumulative report (launch-at-a-time:
        // each statement's own scheduler report counts once).
        self.report.iterations += 1;
        self.report.launches.clear();
        for res in self.last_results.iter().flatten() {
            self.report.wall_seconds += res.sched.wall_seconds;
            self.report.batches += 1;
            self.report.tasks += res.sched.tasks;
            self.report.spans += res.sched.spans;
            self.report.steals += res.sched.steals;
            self.report.threads = self.report.threads.max(res.sched.threads);
            self.report.model_seq_sum += res.time;
            self.report.model_makespan += res.time;
        }
        let launches: Vec<LaunchTiming> = self
            .last_results
            .iter()
            .flatten()
            .flat_map(|r| r.launches.iter().cloned())
            .collect();
        self.report.launches = launches;
        self.update_stmt_reports();
        let trace = self.ctx.trace();
        trace.observe_ns("iter_ns", t0.elapsed().as_nanos() as u64);
        trace.add("iterations", 1);
        Ok(&self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdistal_ir::Format;
    use spdistal_runtime::MachineProfile;
    use spdistal_sparse::{dense_vector, generate, reference};

    const PIECES: usize = 4;

    fn machine() -> Machine {
        Machine::grid1d(PIECES, MachineProfile::lassen_cpu())
    }

    fn spmv_program(b: SpTensor, spec: ScheduleSpec) -> Program {
        let n = b.dims()[0];
        let c = generate::dense_vec(b.dims()[1], 5);
        Program::on(machine())
            .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
            .tensor("B", Format::blocked_csr(), b)
            .tensor("c", Format::replicated_dense_vec(), dense_vector(c))
            .stmt("a(i) = B(i,j) * c(j)")
            .schedule(spec)
    }

    #[test]
    fn figure1_via_program_matches_reference() {
        let b = generate::banded(96, 5, 3);
        let c = generate::dense_vec(96, 5);
        let expect = reference::spmv(&b, &c);
        let mut p = spmv_program(b, ScheduleSpec::outer_dim()).build().unwrap();
        p.run().unwrap();
        let got = p.value(0).unwrap().as_tensor().unwrap();
        assert!(reference::approx_eq(got.vals(), &expect, 1e-12));
        assert_eq!(p.report().compiles, 1);
        assert_eq!(p.report().iterations, 1);
    }

    #[test]
    fn run_iters_compiles_each_pair_exactly_once() {
        let b = generate::banded(96, 5, 3);
        let mut p = spmv_program(b, ScheduleSpec::outer_dim()).build().unwrap();
        p.run_iters(5).unwrap();
        assert_eq!(p.report().iterations, 5);
        assert_eq!(p.report().compiles, 1, "one compile across 5 iterations");
        assert_eq!(p.report().cache_hits, 4);
    }

    #[test]
    fn format_change_misses_the_cache() {
        let b = generate::rmat_default(7, 900, 2);
        let mut p = spmv_program(b, ScheduleSpec::outer_dim()).build().unwrap();
        p.run().unwrap();
        assert_eq!(p.report().compiles, 1);
        // Same statement, same schedule — different format signature.
        p.set_tensor_format("B", Format::nonzero_csr()).unwrap();
        p.run().unwrap();
        assert_eq!(
            p.report().compiles,
            2,
            "a re-declared format must miss the plan cache"
        );
        // And back: the original key (same data, same format) is still
        // cached — plan partitions depend only on statement, schedule, and
        // format, so reuse is sound and counted as a hit.
        p.set_tensor_format("B", Format::blocked_csr()).unwrap();
        p.run().unwrap();
        assert_eq!(p.report().compiles, 2);
        assert_eq!(p.report().cache_hits, 1);
    }

    #[test]
    fn auto_stays_outer_dim_on_balanced_input() {
        let b = generate::banded(128, 7, 9);
        let mut p = spmv_program(b, ScheduleSpec::Auto).build().unwrap();
        p.run_iters(2).unwrap();
        let report = p.report();
        assert_eq!(report.stmts[0].schedule_kind, "outer-dim");
        assert!(report.decisions_for(0).all(|d| d.choice == "outer-dim"));
    }

    #[test]
    fn auto_picks_nonzero_on_heavily_clustered_input() {
        // Hub rows clustered at low indices: the blocked row distribution
        // hands color 0 most of the non-zeros, visible statically.
        let b = generate::rmat_clustered(9, 6000, 0.95, 7);
        let c = generate::dense_vec(b.dims()[1], 5);
        let expect = reference::spmv(&b, &c);
        let mut p = spmv_program(b, ScheduleSpec::Auto).build().unwrap();
        p.run().unwrap();
        let report = p.report();
        assert_eq!(report.stmts[0].schedule_kind, "non-zero");
        let first = report.decisions_for(0).next().unwrap();
        assert_eq!(first.choice, "non-zero");
        assert!(first.reason.contains("imbalance"));
        let got = p.value(0).unwrap().as_tensor().unwrap();
        assert!(reference::approx_eq(got.vals(), &expect, 1e-12));
    }

    #[test]
    fn auto_switches_after_warmup_on_moderately_skewed_input() {
        // Moderate clustering: mild enough that the static statistic keeps
        // the outer-dim pick, skewed enough that the warm-up plan's modeled
        // partition imbalance crosses the switch threshold.
        let b = find_moderate_skew();
        let c = generate::dense_vec(b.dims()[1], 5);
        let expect = reference::spmv(&b, &c);
        let mut p = spmv_program(b, ScheduleSpec::Auto).build().unwrap();
        p.run_iters(3).unwrap();
        let report = p.report();
        let choices: Vec<&str> = report.decisions_for(0).map(|d| d.choice).collect();
        assert_eq!(
            choices,
            vec!["outer-dim", "non-zero"],
            "auto must start outer-dim and switch after the warm-up run: {:#?}",
            report.decisions
        );
        assert!(report.decisions[1].reason.starts_with("warm-up"));
        assert_eq!(report.stmts[0].schedule_kind, "non-zero");
        // Two compiles (one per selection), the rest cache hits.
        assert_eq!(report.compiles, 2);
        assert_eq!(report.cache_hits, 1);
        let got = p.value(0).unwrap().as_tensor().unwrap();
        assert!(reference::approx_eq(got.vals(), &expect, 1e-12));
    }

    /// A clustered R-MAT whose equal row-block nnz imbalance lands between
    /// [`SWITCH_IMBALANCE`] and [`STATIC_IMBALANCE`] (asserted, so the
    /// warm-up-switch test cannot silently test the wrong regime).
    fn find_moderate_skew() -> SpTensor {
        for alpha in [0.45, 0.5, 0.55, 0.6, 0.65, 0.7] {
            let b = generate::rmat_clustered(9, 6000, alpha, 11);
            let bounds = equal_coord_bounds(b.dims()[0], PIECES);
            let init = universe_partition(&b, 0, &bounds);
            let imbalance = partition_tensor(&b, 0, init).vals.imbalance();
            if imbalance > SWITCH_IMBALANCE && imbalance <= STATIC_IMBALANCE {
                return b;
            }
        }
        panic!("no alpha produced a moderately skewed input");
    }

    #[test]
    fn text_and_builder_statements_agree() {
        let b = generate::banded(64, 3, 1);
        let c = generate::dense_vec(64, 5);
        let build = |textual: bool| {
            let program = Program::on(machine())
                .tensor(
                    "a",
                    Format::blocked_dense_vec(),
                    dense_vector(vec![0.0; 64]),
                )
                .tensor("B", Format::blocked_csr(), b.clone())
                .tensor("c", Format::replicated_dense_vec(), dense_vector(c.clone()));
            let program = if textual {
                program.stmt("a(i) = B(i,j) * c(j)")
            } else {
                program.stmt_with(|vars| {
                    let [i, j] = vars.fresh_n(["i", "j"]);
                    crate::api::assign(
                        "a",
                        &[i],
                        crate::api::access("B", &[i, j]) * crate::api::access("c", &[j]),
                    )
                })
            };
            let mut p = program.schedule(ScheduleSpec::outer_dim()).build().unwrap();
            p.run().unwrap();
            p.value(0).unwrap().as_tensor().unwrap().clone()
        };
        let (a, b) = (build(true), build(false));
        assert_eq!(a.vals(), b.vals());
    }

    #[test]
    fn dist_override_applies_tdn() {
        let b = generate::rmat_default(7, 800, 4);
        let mut p = spmv_program(b, ScheduleSpec::outer_dim())
            .dist("B xy (xy->f) -> ~f M")
            .build()
            .unwrap();
        let sig = p.context().tensor("B").unwrap().format.signature();
        assert_eq!(sig, Format::nonzero_csr().signature());
        p.run().unwrap();
        // Unknown tensor in a TDN override is a typed error.
        let b2 = generate::rmat_default(7, 800, 4);
        let err = spmv_program(b2, ScheduleSpec::outer_dim())
            .dist("Z xy -> x M")
            .build();
        assert!(matches!(err, Err(Error::UnknownTensor(_))));
    }

    #[test]
    fn builder_misuse_is_reported_at_build() {
        let err = Program::on(machine()).schedule(ScheduleSpec::Auto).build();
        assert!(matches!(err, Err(Error::Unsupported(_))));
        let err = Program::on(machine()).stmt("a(i) = ").build();
        assert!(matches!(err, Err(Error::Parse(_))));
    }

    #[test]
    fn chained_statements_cut_batches_and_see_writebacks() {
        let b = generate::banded(80, 5, 2);
        let n = b.dims()[0];
        let x0 = generate::dense_vec(n, 6);
        let x1 = reference::spmv(&b, &x0);
        let x2 = reference::spmv(&b, &x1);
        let mut p = Program::on(machine())
            .tensor("B", Format::blocked_csr(), b)
            .tensor("x0", Format::replicated_dense_vec(), dense_vector(x0))
            .tensor(
                "x1",
                Format::blocked_dense_vec(),
                dense_vector(vec![0.0; n]),
            )
            .tensor(
                "x2",
                Format::blocked_dense_vec(),
                dense_vector(vec![0.0; n]),
            )
            .stmt("x1(i) = B(i,j) * x0(j)")
            .schedule(ScheduleSpec::outer_dim())
            .stmt("x2(i) = B(i,j) * x1(j)")
            .schedule(ScheduleSpec::outer_dim())
            .build()
            .unwrap();
        p.run().unwrap();
        assert_eq!(p.report().batches, 2, "RAW chain must cut the flush");
        let got = p.value(1).unwrap().as_tensor().unwrap();
        assert!(reference::approx_eq(got.vals(), &x2, 1e-12));
        assert!(reference::approx_eq(
            p.context().tensor("x1").unwrap().data.vals(),
            &x1,
            1e-12
        ));
    }

    fn bits(p: &CompiledProgram, k: usize) -> Vec<u64> {
        p.value(k)
            .unwrap()
            .as_tensor()
            .unwrap()
            .vals()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    }

    #[test]
    fn run_incremental_is_bit_identical_and_skips_clean_colors() {
        use crate::streaming::CoordDelta;
        let b = generate::banded(96, 5, 3);
        let mut p = spmv_program(b, ScheduleSpec::outer_dim()).build().unwrap();
        p.run().unwrap();
        // Value-only deltas confined to the first few rows: one of four
        // colors is dirty, three are served from the retained output.
        let deltas: Vec<CoordDelta> = (0..4)
            .map(|i| CoordDelta::overwrite(vec![i, i], 7.5 + i as f64))
            .collect();
        let rep = p.update_batch("B", &deltas).unwrap();
        assert!(!rep.structural);
        assert_eq!(rep.overwritten, 4);
        assert_eq!(rep.rows_dirty, 4);
        p.run_incremental().unwrap();
        let stats = p.last_incremental(0).unwrap().clone();
        assert!(!stats.fallback, "unexpected fallback: {}", stats.reason);
        assert_eq!(stats.rows_dirty, 4);
        assert!(stats.spans_reexecuted > 0);
        assert!(stats.spans_skipped > 0, "clean colors must be skipped");
        // Bit-identical to a full recompute over the post-delta data.
        let b2 = p.context().tensor("B").unwrap().data.clone();
        let mut full = spmv_program(b2, ScheduleSpec::outer_dim()).build().unwrap();
        full.run().unwrap();
        assert_eq!(bits(&p, 0), bits(&full, 0));
        // Trace counters observed the pass.
        let m = p.trace().metrics();
        if let Some(m) = m {
            assert_eq!(m.counter("incremental.runs").get(), 1);
        }
    }

    #[test]
    fn run_incremental_without_deltas_skips_every_span() {
        let b = generate::banded(96, 5, 3);
        let mut p = spmv_program(b, ScheduleSpec::outer_dim()).build().unwrap();
        p.run().unwrap();
        let before = bits(&p, 0);
        p.run_incremental().unwrap();
        let stats = p.last_incremental(0).unwrap();
        assert!(!stats.fallback, "unexpected fallback: {}", stats.reason);
        assert_eq!(stats.spans_reexecuted, 0);
        assert!(stats.spans_skipped > 0);
        assert_eq!(bits(&p, 0), before);
    }

    #[test]
    fn structural_deltas_fall_back_and_recompile_bit_identically() {
        use crate::streaming::CoordDelta;
        let b = generate::banded(96, 5, 3);
        let mut p = spmv_program(b, ScheduleSpec::outer_dim()).build().unwrap();
        p.run().unwrap();
        assert_eq!(p.report().compiles, 1);
        // Inserts outside the band change the sparsity pattern: the cached
        // plan's partitions are stale and must be recompiled.
        let deltas = vec![
            CoordDelta::insert(vec![0, 90], 3.25),
            CoordDelta::delete(vec![1, 1]),
            CoordDelta::delete(vec![95, 0]), // absent -> ignored
        ];
        let rep = p.update_batch("B", &deltas).unwrap();
        assert!(rep.structural);
        assert_eq!((rep.inserted, rep.deleted, rep.ignored), (1, 1, 1));
        p.run_incremental().unwrap();
        let stats = p.last_incremental(0).unwrap();
        assert!(stats.fallback);
        assert_eq!(p.report().compiles, 2, "structural deltas must recompile");
        let b2 = p.context().tensor("B").unwrap().data.clone();
        let mut full = spmv_program(b2, ScheduleSpec::outer_dim()).build().unwrap();
        full.run().unwrap();
        assert_eq!(bits(&p, 0), bits(&full, 0));
    }

    #[test]
    fn set_tensor_format_invalidates_incremental_state() {
        use crate::streaming::CoordDelta;
        let b = generate::banded(96, 5, 3);
        let mut p = spmv_program(b, ScheduleSpec::outer_dim()).build().unwrap();
        p.run().unwrap();
        p.update_batch("B", &[CoordDelta::overwrite(vec![0, 0], 9.0)])
            .unwrap();
        // Re-registration drops the tracked dirty state and the retained
        // output: the next incremental pass must fall back, not merge into
        // a buffer keyed to the old format.
        p.set_tensor_format("B", Format::nonzero_csr()).unwrap();
        assert!(p.context().dirty_state("B").is_none());
        p.run_incremental().unwrap();
        let stats = p.last_incremental(0).unwrap();
        assert!(stats.fallback);
        let b2 = p.context().tensor("B").unwrap().data.clone();
        let mut full = spmv_program(b2, ScheduleSpec::outer_dim()).build().unwrap();
        full.run().unwrap();
        assert_eq!(bits(&p, 0), bits(&full, 0));
    }

    #[test]
    fn drift_reselects_nonzero_after_streamed_skew() {
        use crate::streaming::CoordDelta;
        // Balanced band: auto stays outer-dim through warm-up.
        let b = generate::banded(128, 7, 9);
        let mut p = spmv_program(b, ScheduleSpec::Auto).build().unwrap();
        p.run_iters(2).unwrap();
        assert_eq!(p.report().stmts[0].schedule_kind, "outer-dim");
        // Stream inserts concentrated in the first row block until its nnz
        // share crosses the switch threshold.
        let mut deltas = Vec::new();
        for i in 0..32 {
            for j in 64..72 {
                deltas.push(CoordDelta::insert(vec![i, j], 0.5));
            }
        }
        p.update_batch("B", &deltas).unwrap();
        p.run_incremental().unwrap();
        let report = p.report();
        assert_eq!(report.stmts[0].schedule_kind, "non-zero");
        let drift = report
            .decisions_for(0)
            .find(|d| d.reason.starts_with("drift"))
            .expect("a drift re-selection must be recorded");
        assert_eq!(drift.choice, "non-zero");
        // Correct under the re-selected schedule.
        let b2 = p.context().tensor("B").unwrap().data.clone();
        let c = generate::dense_vec(128, 5);
        let expect = reference::spmv(&b2, &c);
        let got = p.value(0).unwrap().as_tensor().unwrap();
        assert!(reference::approx_eq(got.vals(), &expect, 1e-12));
    }

    #[test]
    fn incremental_chained_statements_stay_correct() {
        use crate::streaming::CoordDelta;
        // x1 = B*x0; x2 = B*x1 — stmt 1's operand x1 is rewritten by stmt
        // 0 every pass, so it must fall back while stmt 0 merges.
        let b = generate::banded(80, 5, 2);
        let n = b.dims()[0];
        let x0 = generate::dense_vec(n, 6);
        let build = |b: SpTensor| {
            Program::on(machine())
                .tensor("B", Format::blocked_csr(), b)
                .tensor(
                    "x0",
                    Format::replicated_dense_vec(),
                    dense_vector(x0.clone()),
                )
                .tensor(
                    "x1",
                    Format::blocked_dense_vec(),
                    dense_vector(vec![0.0; n]),
                )
                .tensor(
                    "x2",
                    Format::blocked_dense_vec(),
                    dense_vector(vec![0.0; n]),
                )
                .stmt("x1(i) = B(i,j) * x0(j)")
                .schedule(ScheduleSpec::outer_dim())
                .stmt("x2(i) = B(i,j) * x1(j)")
                .schedule(ScheduleSpec::outer_dim())
                .build()
                .unwrap()
        };
        let mut p = build(b);
        p.run().unwrap();
        p.update_batch("B", &[CoordDelta::overwrite(vec![0, 0], 11.0)])
            .unwrap();
        p.run_incremental().unwrap();
        assert!(!p.last_incremental(0).unwrap().fallback);
        assert!(
            p.last_incremental(1).unwrap().fallback,
            "stmt 1 reads a rewritten operand and must fall back"
        );
        let b2 = p.context().tensor("B").unwrap().data.clone();
        let mut full = build(b2);
        full.run().unwrap();
        assert_eq!(bits(&p, 0), bits(&full, 0));
        assert_eq!(bits(&p, 1), bits(&full, 1));
    }

    #[test]
    fn describe_names_schedules_and_cache_keys() {
        let b = generate::banded(64, 3, 8);
        let mut p = spmv_program(b, ScheduleSpec::outer_dim()).build().unwrap();
        p.run().unwrap();
        let text = p.describe();
        assert!(text.contains("a(iv0) = B(iv0,iv1) * c(iv1)"), "{text}");
        assert!(text.contains("divide(iv0, 4)"), "{text}");
        assert!(text.contains("cache key:"), "{text}");
        assert!(text.contains("{Dense,Compressed} xy -> x"), "{text}");
    }
}
