//! The partitioning level functions of Table I, and the coordinate-tree
//! partition derivation they enable (Section IV).
//!
//! Each tensor dimension is encoded by a level format; partitioning a whole
//! tensor proceeds by (1) creating an *initial* partition of one level —
//! a **universe** partition (coordinate ranges per color) for distributed
//! coordinate-value loops, or a **non-zero** partition (position ranges per
//! color) for distributed position loops — and (2) deriving partitions of
//! all levels above (`partition_from_child`) and below
//! (`partition_from_parent`) the initial level, using Legion's dependent
//! partitioning operators `image` and `preimage` on the `pos`/`crd` regions
//! of compressed levels.
//!
//! A level's *entry space* is its set of coordinate-tree nodes: for a
//! `Dense` level of extent `s` with `P` parent entries it is `[0, P*s)`
//! (linearized `(parent, coord)` pairs); for a `Compressed` level it is the
//! index space of its `crd` array. The partition of level `k`'s entry space
//! simultaneously serves as the partition of level `k+1`'s `pos` region.

use spdistal_runtime::{image_rects, preimage_rects, IntervalSet, Partition, Rect1};
use spdistal_sparse::{Level, SpTensor};

use crate::kernels::split::KernelSpan;

/// Per-level iteration clamps of one `(color, span)` leaf task.
///
/// Built once per task: the color's entry subsets, with the span's level
/// (if any) replaced by the span's subset clamped to the color. Both the
/// generic partitioned walker ([`crate::kernels::walk_partitioned_span`])
/// and the monomorphized kernels ([`crate::kernels::specialized`]) resolve
/// their iteration bounds through this one seam, so the fast path and its
/// fallback visit identical entries by construction.
pub struct LevelClamps<'a> {
    part: &'a TensorPartition,
    color: usize,
    span_level: usize,
    spanned: Option<IntervalSet>,
}

impl<'a> LevelClamps<'a> {
    pub fn new(part: &'a TensorPartition, color: usize, span: Option<&KernelSpan>) -> Self {
        LevelClamps {
            part,
            color,
            span_level: span.map_or(usize::MAX, |s| s.level),
            spanned: span.map(|s| s.clamp_to(part, color)),
        }
    }

    /// The clamp at `level`.
    pub fn level(&self, level: usize) -> &IntervalSet {
        match &self.spanned {
            Some(s) if level == self.span_level => s,
            _ => self.part.entries[level].subset(self.color),
        }
    }
}

/// A full coordinate-tree partition of one tensor: one entry-space partition
/// per level, plus the values partition (aligned with the leaf level).
#[derive(Clone, Debug)]
pub struct TensorPartition {
    /// `entries[k]` partitions level `k`'s entry space.
    pub entries: Vec<Partition>,
    /// Partition of the values array.
    pub vals: Partition,
}

impl TensorPartition {
    pub fn num_colors(&self) -> usize {
        self.vals.num_colors()
    }

    /// The `pos` region partition of compressed level `k` (the partition of
    /// the parent level's entries). Level 0's `pos` conceptually has a
    /// single root entry, so it is fully replicated.
    pub fn pos_partition(&self, k: usize) -> Partition {
        if k == 0 {
            let colors = self.num_colors();
            Partition::new(1, vec![IntervalSet::from_rect(Rect1::new(0, 0)); colors])
        } else {
            self.entries[k - 1].clone()
        }
    }
}

/// Number of entries in each level of `t` (entry-space sizes).
pub fn entry_counts(t: &SpTensor) -> Vec<u64> {
    let mut counts = Vec::with_capacity(t.order());
    let mut parent = 1usize;
    for l in t.levels() {
        parent = l.num_entries(parent);
        counts.push(parent as u64);
    }
    counts
}

/// `initUniversePartition` / `createUniversePartitionEntry` /
/// `finalizeUniversePartition` for level `k`, collapsed into one call: each
/// color receives one *coordinate* range of dimension `k`.
///
/// Only supported when all levels above `k` are dense (the initial level's
/// entry space must be addressable by coordinate); in practice SpDISTAL
/// distributes the outermost dimension, where this always holds.
pub fn universe_partition(t: &SpTensor, k: usize, coord_bounds: &[Rect1]) -> Partition {
    let parent_entries: usize = t.levels()[..k]
        .iter()
        .map(|l| match l {
            Level::Dense { size } => *size,
            Level::Compressed { .. } | Level::Singleton { .. } => {
                panic!("universe partition below a compressed level is unsupported")
            }
        })
        .product();
    match t.level(k) {
        Level::Singleton { crd } => Partition::by_value_ranges(crd, coord_bounds),
        Level::Dense { size } => {
            // Entry space is (parent, coord) linearized. Each color takes
            // its coordinate range within every parent entry.
            let subsets = coord_bounds
                .iter()
                .map(|r| {
                    let rects: Vec<Rect1> = (0..parent_entries as i64)
                        .map(|p| Rect1::new(p * *size as i64 + r.lo, p * *size as i64 + r.hi))
                        .collect();
                    IntervalSet::from_rects(rects)
                })
                .collect();
            Partition::new((parent_entries * size) as u64, subsets)
        }
        Level::Compressed { crd, .. } => {
            // Bucket crd positions by coordinate value range
            // (partitionByValueRanges), Table I.
            Partition::by_value_ranges(crd, coord_bounds)
        }
    }
}

/// Equal coordinate ranges for a universe partition of dimension `k`.
pub fn equal_coord_bounds(extent: usize, colors: usize) -> Vec<Rect1> {
    let p = Partition::equal(extent as u64, colors);
    (0..colors).map(|c| p.subset(c).bounding_rect()).collect()
}

/// `initNonZeroPartition` / `createNonZeroPartitionEntry` /
/// `finalizeNonZeroPartition` for compressed level `k`: each color receives
/// an equal range of stored *positions* (perfect static load balance).
pub fn nonzero_partition(t: &SpTensor, k: usize, colors: usize) -> Partition {
    match t.level(k) {
        Level::Compressed { crd, .. } => Partition::equal(crd.len() as u64, colors),
        Level::Singleton { crd } => Partition::equal(crd.len() as u64, colors),
        Level::Dense { size } => {
            // A dense level stores every coordinate, so its non-zero
            // partition coincides with the universe partition of its
            // entries.
            let parents: u64 = entry_counts(t)[k] / *size as u64;
            Partition::equal(parents * *size as u64, colors)
        }
    }
}

/// `partitionFromParent` for level `k`: derive this level's entry partition
/// from the parent level's entry partition.
pub fn partition_from_parent(t: &SpTensor, k: usize, parent: &Partition) -> Partition {
    match t.level(k) {
        // Singleton entries coincide with their parents.
        Level::Singleton { .. } => parent.clone(),
        Level::Dense { size } => scale_partition(parent, *size),
        Level::Compressed { pos, crd } => {
            // P_pos = copy(parentPart); P_crd = image(pos, P_pos, crd).
            image_rects(pos, parent, crd.len() as u64)
        }
    }
}

/// `partitionFromChild` for level `k`: derive the *parent* level's entry
/// partition from this level's entry partition.
pub fn partition_from_child(t: &SpTensor, k: usize, child: &Partition) -> Partition {
    match t.level(k) {
        Level::Singleton { .. } => child.clone(),
        Level::Dense { size } => unscale_partition(child, *size),
        Level::Compressed { pos, .. } => {
            // P_crd = copy(childPart); P_pos = preimage(pos, P_crd, crd).
            preimage_rects(pos, child)
        }
    }
}

/// Expand a partition of parent entries into the child entry space of a
/// dense level: parent entry `p` owns child entries `[p*size, (p+1)*size)`.
fn scale_partition(parent: &Partition, size: usize) -> Partition {
    let s = size as i64;
    let subsets = parent
        .subsets()
        .iter()
        .map(|set| {
            set.rects()
                .iter()
                .map(|r| Rect1::new(r.lo * s, (r.hi + 1) * s - 1))
                .collect()
        })
        .collect();
    Partition::new(parent.parent_len() * size as u64, subsets)
}

/// Contract a partition of a dense level's entries back to parent entries.
fn unscale_partition(child: &Partition, size: usize) -> Partition {
    let s = size as i64;
    let subsets = child
        .subsets()
        .iter()
        .map(|set| {
            set.rects()
                .iter()
                .map(|r| Rect1::new(r.lo.div_euclid(s), r.hi.div_euclid(s)))
                .collect()
        })
        .collect();
    Partition::new(child.parent_len() / size as u64, subsets)
}

/// The full coordinate-tree derivation (Section IV-A): given an initial
/// partition of level `k`'s entry space, derive every level above with
/// `partition_from_child` and every level below with
/// `partition_from_parent`; the values partition copies the leaf level's.
pub fn partition_tensor(t: &SpTensor, k: usize, initial: Partition) -> TensorPartition {
    let order = t.order();
    let mut entries: Vec<Option<Partition>> = vec![None; order];
    entries[k] = Some(initial);
    // Upward.
    for level in (1..=k).rev() {
        let child = entries[level].as_ref().unwrap().clone();
        entries[level - 1] = Some(partition_from_child(t, level, &child));
    }
    // Downward.
    for level in k + 1..order {
        let parent = entries[level - 1].as_ref().unwrap().clone();
        entries[level] = Some(partition_from_parent(t, level, &parent));
    }
    let entries: Vec<Partition> = entries.into_iter().map(Option::unwrap).collect();
    let vals = entries[order - 1].clone();
    TensorPartition { entries, vals }
}

/// A fully replicated partition: every color sees the whole tensor.
pub fn replicated_partition(t: &SpTensor, colors: usize) -> TensorPartition {
    let counts = entry_counts(t);
    let entries = counts
        .iter()
        .map(|&n| {
            Partition::new(
                n,
                vec![IntervalSet::from_rect(Rect1::new(0, n as i64 - 1)); colors],
            )
        })
        .collect::<Vec<_>>();
    let vals = Partition::new(
        t.num_stored() as u64,
        vec![IntervalSet::from_rect(Rect1::new(0, t.num_stored() as i64 - 1)); colors],
    );
    TensorPartition { entries, vals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdistal_sparse::{csr_from_triplets, generate};

    fn fig7() -> SpTensor {
        csr_from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (0, 1, 2.0),
                (0, 3, 3.0),
                (1, 1, 4.0),
                (1, 3, 5.0),
                (2, 0, 6.0),
                (3, 0, 7.0),
                (3, 3, 8.0),
            ],
        )
    }

    #[test]
    fn entry_counts_csr() {
        let t = fig7();
        assert_eq!(entry_counts(&t), vec![4, 8]);
    }

    /// Figure 9c: row-based SpMV creates a universe partition of rows, then
    /// derives crd/vals partitions downward.
    #[test]
    fn universe_row_partition_fig9c() {
        let t = fig7();
        let bounds = equal_coord_bounds(4, 2);
        let init = universe_partition(&t, 0, &bounds);
        let tp = partition_tensor(&t, 0, init);
        // Rows {0,1} own crd/vals [0,4]; rows {2,3} own [5,7].
        assert_eq!(tp.entries[0].subset(0).rects(), &[Rect1::new(0, 1)]);
        assert_eq!(tp.entries[1].subset(0).rects(), &[Rect1::new(0, 4)]);
        assert_eq!(tp.entries[1].subset(1).rects(), &[Rect1::new(5, 7)]);
        assert_eq!(tp.vals.subset(1).rects(), &[Rect1::new(5, 7)]);
        assert!(tp.entries[1].is_disjoint() && tp.entries[1].is_complete());
    }

    /// Figure 9d: non-zero partition of the second level, derived upward.
    #[test]
    fn nonzero_partition_fig9d() {
        let t = fig7();
        let init = nonzero_partition(&t, 1, 2);
        let tp = partition_tensor(&t, 1, init);
        // crd split equally: [0,3], [4,7].
        assert_eq!(tp.entries[1].subset(0).rects(), &[Rect1::new(0, 3)]);
        assert_eq!(tp.entries[1].subset(1).rects(), &[Rect1::new(4, 7)]);
        // pos[1] = [3,4] straddles: row 1 aliased into both colors.
        assert!(tp.entries[0].subset(0).contains(1));
        assert!(tp.entries[0].subset(1).contains(1));
        assert!(!tp.entries[0].is_disjoint());
        assert!(tp.entries[0].is_complete());
    }

    #[test]
    fn nonzero_partition_balances_skew() {
        // A matrix whose first row block is much denser than the rest.
        let mut triplets = Vec::new();
        for j in 0..512i64 {
            triplets.push((j % 4, j, 1.0)); // rows 0-3 hold 512 entries
        }
        for i in 4..64i64 {
            triplets.push((i, 0, 1.0)); // one entry per remaining row
        }
        let t = csr_from_triplets(64, 512, &triplets);
        let colors = 8;
        // Universe (row) partition: the first color owns the dense rows.
        let u = partition_tensor(
            &t,
            0,
            universe_partition(&t, 0, &equal_coord_bounds(64, colors)),
        );
        // Non-zero partition: perfectly balanced values.
        let z = partition_tensor(&t, 1, nonzero_partition(&t, 1, colors));
        assert!(
            u.vals.imbalance() > 4.0,
            "u imbalance {}",
            u.vals.imbalance()
        );
        assert!(
            z.vals.imbalance() < 1.05,
            "z imbalance {}",
            z.vals.imbalance()
        );
    }

    #[test]
    fn universe_partition_of_compressed_level0() {
        // DCSR: level 0 compressed.
        let t = spdistal_sparse::convert::to_dcsr(&fig7());
        let init = universe_partition(&t, 0, &equal_coord_bounds(4, 2));
        let tp = partition_tensor(&t, 0, init);
        assert!(tp.entries[0].is_complete());
        assert!(tp.vals.is_complete());
    }

    #[test]
    fn dds_partition_through_dense_levels() {
        // {Dense, Dense, Compressed} patents-like tensor.
        let t = generate::tensor3_uniform_fmt(
            [4, 8, 16],
            100,
            7,
            &[
                spdistal_sparse::LevelFormat::Dense,
                spdistal_sparse::LevelFormat::Dense,
                spdistal_sparse::LevelFormat::Compressed,
            ],
        );
        let init = universe_partition(&t, 0, &equal_coord_bounds(4, 2));
        let tp = partition_tensor(&t, 0, init);
        assert_eq!(tp.entries[0].parent_len(), 4);
        assert_eq!(tp.entries[1].parent_len(), 32);
        assert!(tp.entries[1].is_disjoint() && tp.entries[1].is_complete());
        assert!(tp.vals.is_complete());
        // vals count == nnz for trailing compressed.
        assert_eq!(tp.vals.parent_len(), t.nnz() as u64);
    }

    #[test]
    fn csf3_nonzero_values_partition() {
        let t = generate::tensor3_uniform([8, 8, 8], 200, 11);
        let colors = 4;
        let tp = partition_tensor(&t, 2, nonzero_partition(&t, 2, colors));
        assert!(tp.vals.imbalance() < 1.1);
        // All levels complete (possibly aliased).
        for e in &tp.entries {
            assert!(e.is_complete());
        }
    }

    #[test]
    fn pos_partition_accessor() {
        let t = fig7();
        let tp = partition_tensor(&t, 1, nonzero_partition(&t, 1, 2));
        let pos1 = tp.pos_partition(1);
        assert_eq!(pos1.parent_len(), 4);
        let pos0 = tp.pos_partition(0);
        assert_eq!(pos0.parent_len(), 1);
        assert!(pos0.subset(0).contains(0) && pos0.subset(1).contains(0));
    }

    #[test]
    fn replicated_covers_everything() {
        let t = fig7();
        let tp = replicated_partition(&t, 3);
        for c in 0..3 {
            assert_eq!(tp.vals.subset(c).total_len(), 8);
            assert_eq!(tp.entries[0].subset(c).total_len(), 4);
        }
    }

    #[test]
    fn roundtrip_up_down_consistent() {
        // Deriving down then up from the same seed must cover the seed.
        let t = generate::uniform(64, 64, 800, 13);
        let init = nonzero_partition(&t, 1, 4);
        let tp = partition_tensor(&t, 1, init.clone());
        let down_again = partition_from_parent(&t, 1, &tp.entries[0]);
        for c in 0..4 {
            assert!(
                down_again.subset(c).contains_set(init.subset(c)),
                "color {c} lost entries"
            );
        }
    }
}
