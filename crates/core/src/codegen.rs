//! The partitioning code generation algorithm (Figure 9a, Section IV-C).
//!
//! For the distributed index variable of a lowered loop nest, the generator:
//!
//! 1. creates an **initial level partition** of the driving tensor —
//!    a universe partition for coordinate-value loops, a non-zero partition
//!    for coordinate-position loops;
//! 2. derives the **full coordinate-tree partition** of the driver with
//!    `partitionFromChild` / `partitionFromParent` (Table I);
//! 3. partitions all **remaining tensors** from per-index-variable
//!    coordinate sets projected out of the driver's partition (the
//!    `partitionRemainingCoordinateTrees` step) — sparse tensors sharing the
//!    distributed dimension get universe partitions, dense operands get
//!    exactly the sub-arrays their colors touch (via `image` on the driver's
//!    `crd` regions), and everything else is replicated;
//! 4. classifies the output: disjoint coordinate partitions write, aliased
//!    ones reduce (the communication the non-zero SpMV schedule pays,
//!    Section II-D).
//!
//! The result is a [`Plan`]: the executable artifact this compiler produces
//! in place of emitted C++.

use std::collections::HashMap;

use spdistal_ir::{Assignment, IndexVar, IterKind, LoopNest, Schedule};
use spdistal_runtime::{image_coords, IntervalSet, Partition, Rect1};
use spdistal_sparse::{Level, SpTensor};

use crate::dist_tensor::{Context, Error};
use crate::kernels::{self, LeafKernel};
use crate::level_funcs::{
    nonzero_partition, partition_tensor, replicated_partition, universe_partition, TensorPartition,
};

/// How the output tensor is produced.
#[derive(Clone, Debug)]
pub enum OutKind {
    /// Dense vector of the lhs extent.
    DenseVec,
    /// Dense row-major matrix; `width` columns per row.
    DenseMat { width: usize },
    /// Values aligned with a pattern borrowed from the driver (SDDMM uses
    /// the driver's leaf entries, SpTTV its level-1 fibers).
    PatternVals { level: usize },
    /// Sparse output with unknown pattern: two-phase assembly
    /// (Section V-B).
    SparseAssembled,
}

/// An input tensor with its coordinate-tree partition.
#[derive(Clone, Debug)]
pub struct PlannedInput {
    pub tensor: String,
    pub part: TensorPartition,
}

/// The output tensor plan.
#[derive(Clone, Debug)]
pub struct PlannedOutput {
    pub tensor: String,
    pub kind: OutKind,
    /// Per-color partition of the output's element space (coordinates for
    /// dense outputs, stored positions for pattern outputs). Empty subsets
    /// for [`OutKind::SparseAssembled`] (sized during execution).
    pub part: Partition,
    /// True if colors' output subsets alias and must be combined
    /// (reduction privilege).
    pub reduce: bool,
}

/// A compiled distributed plan.
#[derive(Clone, Debug)]
pub struct Plan {
    pub name: String,
    pub kernel: LeafKernel,
    pub colors: usize,
    pub machine_dim: usize,
    /// The tensor driving iteration (the sparse operand).
    pub driver: String,
    /// `Format::levels_signature()` of the driver's declared format — the
    /// specialized-kernel-table key ([`crate::kernels::specialized`]),
    /// derived here at compile time and resolved once per prepared plan.
    pub driver_levels: String,
    pub inputs: Vec<PlannedInput>,
    pub output: PlannedOutput,
    pub stmt: Assignment,
}

/// Compile a scheduled statement into a [`Plan`] (the top-level `codegen`
/// of Figure 9a).
pub fn compile(ctx: &Context, stmt: &Assignment, schedule: &Schedule) -> Result<Plan, Error> {
    let nest = spdistal_ir::lower(stmt, schedule, ctx.vars())?;
    compile_nest(ctx, &nest)
}

/// Compile an already-lowered loop nest.
pub fn compile_nest(ctx: &Context, nest: &LoopNest) -> Result<Plan, Error> {
    let stmt = &nest.stmt;
    let dist: Vec<_> = nest.distributed_loops().collect();
    let [dist_loop] = dist.as_slice() else {
        return Err(Error::Unsupported(format!(
            "exactly one distributed loop supported, got {}",
            dist.len()
        )));
    };
    let machine_dim = dist_loop.distributed.unwrap();
    let colors = dist_loop
        .pieces
        .unwrap_or_else(|| ctx.machine().dim(machine_dim));
    if colors != ctx.machine().dim(machine_dim) {
        return Err(Error::Unsupported(format!(
            "divide pieces ({colors}) must match machine dimension extent ({})",
            ctx.machine().dim(machine_dim)
        )));
    }

    // Leaf kernel recognition against the context's tensor table.
    let lookup = |name: &str| -> Option<(usize, bool, Vec<usize>)> {
        ctx.tensor(name).ok().map(|t| {
            (
                t.data.order(),
                kernels::is_sparse(&t.data),
                t.data.dims().to_vec(),
            )
        })
    };
    let kernel = kernels::recognize(stmt, &lookup);

    // Identify the driver and its initial partition.
    let roots = ctx.vars().roots(dist_loop.var);
    let (driver_name, driver_part) = match &dist_loop.kind {
        IterKind::Position { tensor } => {
            let t = ctx.tensor(tensor)?;
            // The fused roots must prefix the driver's access; the initial
            // non-zero partition lands on the level of the last fused root.
            let access = stmt
                .rhs
                .accesses()
                .into_iter()
                .find(|a| &a.tensor == tensor)
                .ok_or_else(|| Error::UnknownTensor(tensor.clone()))?;
            let level = position_level(&roots, &access.indices)?;
            let init = nonzero_partition(&t.data, level, colors);
            (tensor.clone(), partition_tensor(&t.data, level, init))
        }
        IterKind::Value => {
            let [root] = roots.as_slice() else {
                return Err(Error::Unsupported(
                    "distributed value loop derived from multiple roots; \
                     use a position-space (non-zero) distribution"
                        .into(),
                ));
            };
            // Driver: first sparse rhs tensor accessed with the root at
            // its outermost dimension.
            let driver = stmt
                .rhs
                .accesses()
                .into_iter()
                .find(|a| {
                    a.indices.first() == Some(root) && lookup(&a.tensor).is_some_and(|(_, s, _)| s)
                })
                .ok_or_else(|| {
                    Error::Unsupported(
                        "no sparse tensor indexed by the distributed variable".into(),
                    )
                })?;
            let t = ctx.tensor(&driver.tensor)?;
            let extent = t.data.dims()[0];
            let bounds = crate::level_funcs::equal_coord_bounds(extent, colors);
            let init = universe_partition(&t.data, 0, &bounds);
            (driver.tensor.clone(), partition_tensor(&t.data, 0, init))
        }
    };

    // Per-index-variable coordinate sets projected from the driver.
    let driver_tensor = &ctx.tensor(&driver_name)?.data;
    let driver_access = stmt
        .rhs
        .accesses()
        .into_iter()
        .find(|a| a.tensor == driver_name)
        .unwrap()
        .clone();
    let coord_sets = project_coord_sets(driver_tensor, &driver_part, &driver_access.indices);

    // Partition the remaining input tensors.
    let mut inputs = vec![PlannedInput {
        tensor: driver_name.clone(),
        part: driver_part.clone(),
    }];
    for access in stmt.rhs.accesses() {
        if access.tensor == driver_name || inputs.iter().any(|i| i.tensor == access.tensor) {
            continue;
        }
        let t = ctx.tensor(&access.tensor)?;
        let part = if kernels::is_sparse(&t.data) {
            sparse_operand_partition(&t.data, &access.indices, &coord_sets, colors)?
        } else {
            dense_operand_partition(&t.data, &access.indices, &coord_sets, colors)
        };
        inputs.push(PlannedInput {
            tensor: access.tensor.clone(),
            part,
        });
    }

    // Plan the output.
    let out_tensor = ctx.tensor(&stmt.lhs.tensor)?;
    let output = plan_output(
        &kernel,
        stmt,
        &out_tensor.data,
        driver_tensor,
        &driver_part,
        &coord_sets,
        colors,
    )?;

    let driver_levels = ctx.tensor(&driver_name)?.format.levels_signature();
    Ok(Plan {
        name: format!("{}<-{}", stmt.lhs.tensor, driver_name),
        kernel,
        colors,
        machine_dim,
        driver: driver_name,
        driver_levels,
        inputs,
        output,
        stmt: stmt.clone(),
    })
}

/// The driver level an initial non-zero partition targets: the level of the
/// last fused root within the access.
fn position_level(roots: &[IndexVar], access: &[IndexVar]) -> Result<usize, Error> {
    for (k, r) in roots.iter().enumerate() {
        if access.get(k) != Some(r) {
            return Err(Error::Unsupported(
                "position-space roots must prefix the driver access".into(),
            ));
        }
    }
    Ok(roots.len() - 1)
}

/// Project, per index variable of the driver's access, the coordinate set
/// each color touches. `None` means "unknown — assume all".
fn project_coord_sets(
    driver: &SpTensor,
    part: &TensorPartition,
    access: &[IndexVar],
) -> HashMap<IndexVar, Vec<IntervalSet>> {
    let mut out = HashMap::new();
    for (dim, &var) in access.iter().enumerate() {
        let coords: Option<Vec<IntervalSet>> = match driver.level(dim) {
            Level::Dense { .. } if dim == 0 => Some(
                (0..part.num_colors())
                    .map(|c| part.entries[0].subset(c).clone())
                    .collect(),
            ),
            Level::Compressed { crd, .. } => {
                let p = image_coords(crd, &part.entries[dim], driver.dims()[dim] as u64);
                Some((0..p.num_colors()).map(|c| p.subset(c).clone()).collect())
            }
            _ => None,
        };
        if let Some(sets) = coords {
            out.insert(var, sets);
        }
    }
    out
}

/// Universe-partition a sparse operand along its outermost dimension using
/// the distributed variable's coordinate bounds.
fn sparse_operand_partition(
    t: &SpTensor,
    access: &[IndexVar],
    coord_sets: &HashMap<IndexVar, Vec<IntervalSet>>,
    colors: usize,
) -> Result<TensorPartition, Error> {
    let Some(sets) = access.first().and_then(|v| coord_sets.get(v)) else {
        // No shared outer dimension: replicate.
        return Ok(replicated_partition(t, colors));
    };
    let bounds: Vec<Rect1> = sets.iter().map(IntervalSet::bounding_rect).collect();
    let init = universe_partition(t, 0, &bounds);
    Ok(partition_tensor(t, 0, init))
}

/// Partition a dense operand's values to exactly what each color touches.
/// Falls back to replication when the needed subset would be too fragmented
/// to represent profitably (the runtime then models a full broadcast, as a
/// library would).
fn dense_operand_partition(
    t: &SpTensor,
    access: &[IndexVar],
    coord_sets: &HashMap<IndexVar, Vec<IntervalSet>>,
    colors: usize,
) -> TensorPartition {
    const MAX_RECTS: usize = 262_144;
    let full = |extent: usize| IntervalSet::from_rect(Rect1::new(0, extent as i64 - 1));
    let mut part = replicated_partition(t, colors);
    match t.order() {
        1 => {
            let extent = t.dims()[0];
            let subsets: Vec<IntervalSet> = (0..colors)
                .map(|c| match access.first().and_then(|v| coord_sets.get(v)) {
                    Some(sets) => sets[c].clone(),
                    None => full(extent),
                })
                .collect();
            part.vals = Partition::new(extent as u64, subsets);
        }
        2 => {
            let (rows, cols) = (t.dims()[0], t.dims()[1]);
            let row_sets = access.first().and_then(|v| coord_sets.get(v));
            let col_sets = access.get(1).and_then(|v| coord_sets.get(v));
            let subsets: Vec<IntervalSet> = (0..colors)
                .map(|c| {
                    let rset = row_sets.map_or_else(|| full(rows), |s| s[c].clone());
                    let cset = col_sets.map_or_else(|| full(cols), |s| s[c].clone());
                    if cset.total_len() as usize == cols {
                        // Whole rows: contiguous after row-major scaling.
                        IntervalSet::from_rects(
                            rset.rects()
                                .iter()
                                .map(|r| {
                                    Rect1::new(r.lo * cols as i64, (r.hi + 1) * cols as i64 - 1)
                                })
                                .collect(),
                        )
                    } else if rset.total_len() as usize * cset.num_runs() <= MAX_RECTS {
                        let mut rects = Vec::new();
                        for i in rset.iter_points() {
                            for cr in cset.rects() {
                                rects.push(Rect1::new(
                                    i * cols as i64 + cr.lo,
                                    i * cols as i64 + cr.hi,
                                ));
                            }
                        }
                        IntervalSet::from_rects(rects)
                    } else {
                        full(rows * cols)
                    }
                })
                .collect();
            part.vals = Partition::new((rows * cols) as u64, subsets);
        }
        _ => {}
    }
    part
}

/// Decide how the output is produced and partitioned.
fn plan_output(
    kernel: &LeafKernel,
    stmt: &Assignment,
    out: &SpTensor,
    driver: &SpTensor,
    driver_part: &TensorPartition,
    coord_sets: &HashMap<IndexVar, Vec<IntervalSet>>,
    colors: usize,
) -> Result<PlannedOutput, Error> {
    let name = stmt.lhs.tensor.clone();
    let i_sets = stmt
        .lhs
        .indices
        .first()
        .and_then(|v| coord_sets.get(v))
        .cloned()
        .unwrap_or_else(|| {
            vec![IntervalSet::from_rect(Rect1::new(0, out.dims()[0] as i64 - 1)); colors]
        });
    let coord_part = Partition::new(out.dims()[0] as u64, i_sets);
    let reduce = !coord_part.is_disjoint();

    let (kind, part) = match kernel {
        LeafKernel::SpMv => (OutKind::DenseVec, coord_part),
        LeafKernel::SpMm { jdim } => (OutKind::DenseMat { width: *jdim }, coord_part),
        LeafKernel::SpMttkrp { ldim } => (OutKind::DenseMat { width: *ldim }, coord_part),
        LeafKernel::Sddmm { .. } => (
            OutKind::PatternVals {
                level: driver.order() - 1,
            },
            driver_part.vals.clone(),
        ),
        LeafKernel::SpTtv => (
            OutKind::PatternVals { level: 1 },
            driver_part.entries[1].clone(),
        ),
        LeafKernel::SpAdd3 => (OutKind::SparseAssembled, Partition::empty(0, colors)),
        LeafKernel::Generic => {
            // Interpreted fallback: dense output over the lhs space.
            if stmt.lhs.indices.len() == 1 {
                (OutKind::DenseVec, coord_part)
            } else if out.order() == 2 {
                (
                    OutKind::DenseMat {
                        width: out.dims()[1],
                    },
                    coord_part,
                )
            } else {
                return Err(Error::Unsupported(
                    "generic fallback supports vector/matrix outputs".into(),
                ));
            }
        }
    };

    // Pattern outputs never alias across colors if the driver partition is
    // disjoint at the pattern level.
    let reduce = match kind {
        OutKind::PatternVals { .. } => !part.is_disjoint(),
        OutKind::SparseAssembled => false,
        _ => reduce,
    };
    Ok(PlannedOutput {
        tensor: name,
        kind,
        part,
        reduce,
    })
}
