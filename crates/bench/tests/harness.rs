//! Robustness tests for the `spd-harness` orchestration layer: child
//! failure modes, report extraction, cross-repeat merging, and the
//! baseline comparison's edge cases.

use spdistal_bench::harness::{
    compare, extract_report, merge_runs, render_delta_table, run_child, suite, ChildRun,
    Comparison, MergedRun, Scenario, Verdict, BENCH_SCHEMA_VERSION,
};
use spdistal_obs::json::Json;
use spdistal_obs::HistSnapshot;

fn scenario(name: &'static str) -> Scenario {
    Scenario {
        name,
        command: vec!["true".to_string()],
        env: vec![],
        suites: &["ci"],
        threads: 2,
        scale: 0.05,
    }
}

fn sh(cmd: &str) -> Vec<String> {
    vec!["sh".to_string(), "-c".to_string(), cmd.to_string()]
}

fn report_with_hist(mean_ns: u64, count: u64) -> ChildRun {
    let mut snap = HistSnapshot::default();
    for _ in 0..count {
        snap.observe(mean_ns);
    }
    let line = format!(
        "{{\"name\":\"t\",\"counters\":{{\"steals\":4}},\"hist_raw\":{{\"iter_ns\":{}}}}}",
        snap.to_json()
    );
    ChildRun {
        report: Json::parse(&line).unwrap(),
        wall_seconds: 0.1,
    }
}

fn merged(scen: &Scenario, mean_ns: u64) -> MergedRun {
    merge_runs(
        scen,
        &[report_with_hist(mean_ns, 8), report_with_hist(mean_ns, 8)],
    )
    .unwrap()
}

// ---- report extraction ---------------------------------------------------

#[test]
fn extracts_last_report_line() {
    let stdout =
        "noise\nrun_report_json={\"name\":\"a\"}\nmore\nrun_report_json={\"name\":\"b\"}\n";
    let report = extract_report(stdout).unwrap();
    assert_eq!(report.get("name").unwrap().as_str(), Some("b"));
}

#[test]
fn missing_report_line_is_an_error() {
    let err = extract_report("plain output\nno markers here\n").unwrap_err();
    assert!(err.contains("run_report_json="), "{err}");
}

#[test]
fn malformed_report_line_is_an_error() {
    let err = extract_report("run_report_json={not json\n").unwrap_err();
    assert!(err.contains("malformed"), "{err}");
}

// ---- child processes -----------------------------------------------------

#[test]
fn child_success_with_report() {
    let cmd = sh("echo 'run_report_json={\"name\":\"x\",\"counters\":{\"c\":1}}'");
    let run = run_child(&cmd, &[]).unwrap();
    assert_eq!(run.report.get("name").unwrap().as_str(), Some("x"));
}

#[test]
fn child_nonzero_exit_is_an_error_with_stderr() {
    let cmd = sh("echo oops >&2; exit 3");
    let err = run_child(&cmd, &[]).unwrap_err();
    assert!(err.contains("exited with"), "{err}");
    assert!(err.contains("oops"), "stderr tail missing: {err}");
}

#[test]
fn child_without_report_line_is_an_error() {
    let err = run_child(&sh("echo hello"), &[]).unwrap_err();
    assert!(err.contains("run_report_json="), "{err}");
}

#[test]
fn child_env_is_pinned() {
    let cmd = sh("echo \"run_report_json={\\\"name\\\":\\\"$SPD_TEST_VAR\\\"}\"");
    let env = [("SPD_TEST_VAR".to_string(), "pinned".to_string())];
    let run = run_child(&cmd, &env).unwrap();
    assert_eq!(run.report.get("name").unwrap().as_str(), Some("pinned"));
}

// ---- merging -------------------------------------------------------------

#[test]
fn merge_sums_hists_and_averages_counters() {
    let scen = scenario("m");
    let m = merge_runs(
        &scen,
        &[report_with_hist(1000, 4), report_with_hist(3000, 4)],
    )
    .unwrap();
    assert_eq!(m.repeats, 2);
    assert_eq!(m.counters["steals"], 4.0); // (4 + 4) / 2
    let h = &m.hists["iter_ns"];
    assert_eq!(h.count, 8); // exact cross-repeat merge
    assert_eq!(h.sum, 4 * 1000 + 4 * 3000);
}

#[test]
fn merge_of_empty_histograms_is_empty_not_a_crash() {
    let scen = scenario("empty");
    let line = "{\"name\":\"t\",\"hist_raw\":{\"iter_ns\":{\"count\":0,\"sum\":0,\"max\":0,\"buckets\":[]}}}";
    let run = ChildRun {
        report: Json::parse(line).unwrap(),
        wall_seconds: 0.0,
    };
    let m = merge_runs(&scen, &[run.clone(), run]).unwrap();
    assert!(m.hists["iter_ns"].is_empty());
    // And comparing two empty-histogram points is a no-op, not a panic.
    let base = Json::parse(&m.bench_file_json("ci")).unwrap();
    let cmp = compare(Some(&base), &m, 1.8);
    assert_eq!(cmp.verdict, Verdict::Ok);
    assert!(cmp.rows.iter().all(|r| r.status == "skipped"));
}

#[test]
fn merge_with_no_runs_is_an_error() {
    assert!(merge_runs(&scenario("none"), &[]).is_err());
}

#[test]
fn reports_without_hists_still_merge() {
    let scen = scenario("bare");
    let run = ChildRun {
        report: Json::parse("{\"name\":\"t\",\"trace\":\"disabled\"}").unwrap(),
        wall_seconds: 0.0,
    };
    let m = merge_runs(&scen, &[run]).unwrap();
    assert!(m.hists.is_empty() && m.counters.is_empty());
}

// ---- BENCH file schema ---------------------------------------------------

#[test]
fn bench_file_is_schema_versioned_and_round_trips() {
    let scen = scenario("schema");
    let m = merged(&scen, 2000);
    let doc = Json::parse(&m.bench_file_json("ci")).unwrap();
    assert_eq!(
        doc.get("schema").unwrap().as_f64(),
        Some(BENCH_SCHEMA_VERSION as f64)
    );
    assert_eq!(doc.get("scenario").unwrap().as_str(), Some("schema"));
    assert_eq!(doc.get("repeats").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("threads").unwrap().as_f64(), Some(2.0));
    assert_eq!(doc.get("scale").unwrap().as_f64(), Some(0.05));
    // hist_raw round-trips to the exact merged snapshot.
    let raw = doc.get("hist_raw").unwrap().get("iter_ns").unwrap();
    assert_eq!(HistSnapshot::from_json(raw).unwrap(), m.hists["iter_ns"]);
    // The summarized view scales *_ns to *_us.
    assert!(doc.get("hist").unwrap().get("iter_us").is_some());
}

// ---- baseline comparison -------------------------------------------------

#[test]
fn missing_baseline_is_ok_with_a_note() {
    let cmp = compare(None, &merged(&scenario("s"), 1000), 1.8);
    assert_eq!(cmp.verdict, Verdict::Ok);
    assert!(
        cmp.notes.iter().any(|n| n.contains("no baseline")),
        "{cmp:?}"
    );
}

#[test]
fn unchanged_point_is_ok_and_regression_is_caught() {
    let scen = scenario("gate");
    let base_run = merged(&scen, 1000);
    let base = Json::parse(&base_run.bench_file_json("ci")).unwrap();

    // Same numbers: every gated row ok.
    let same = compare(Some(&base), &base_run, 1.8);
    assert_eq!(same.verdict, Verdict::Ok);
    assert!(same.rows.iter().any(|r| r.status == "ok"));

    // A synthetic >=2x latency regression must flip the verdict.
    let slow = compare(Some(&base), &merged(&scen, 2000), 1.8);
    assert_eq!(slow.verdict, Verdict::Regressed);
    let row = slow.rows.iter().find(|r| r.status == "REGRESSED").unwrap();
    assert_eq!(row.metric, "iter_us");
    assert!((row.ratio - 2.0).abs() < 1e-9, "{row:?}");
    // The delta table renders the regression for the CI log.
    let table = render_delta_table("gate", &slow);
    assert!(table.contains("REGRESSED"), "{table}");

    // An improvement is reported but never fails the gate.
    let fast = compare(Some(&base), &merged(&scen, 400), 1.8);
    assert_eq!(fast.verdict, Verdict::Ok);
    assert!(fast.rows.iter().any(|r| r.status == "improved"));
}

#[test]
fn tolerance_zero_disables_gating() {
    let scen = scenario("tol");
    let base = Json::parse(&merged(&scen, 1000).bench_file_json("ci")).unwrap();
    let cmp = compare(Some(&base), &merged(&scen, 10_000), 0.0);
    assert_eq!(cmp.verdict, Verdict::Ok);
    assert!(cmp.rows.iter().all(|r| r.status != "REGRESSED"));
}

#[test]
fn schema_and_config_mismatches_skip_gating() {
    let scen = scenario("cfg");
    let fresh = merged(&scen, 2000);

    let other_schema = Json::parse("{\"schema\":999}").unwrap();
    let cmp = compare(Some(&other_schema), &fresh, 1.8);
    assert_eq!(cmp.verdict, Verdict::Ok);
    assert!(cmp.notes.iter().any(|n| n.contains("schema")), "{cmp:?}");

    // Same schema, different scale: configs are not comparable.
    let mut other = scenario("cfg");
    other.scale = 0.5;
    let base = Json::parse(&merged(&other, 1000).bench_file_json("ci")).unwrap();
    let cmp = compare(Some(&base), &fresh, 1.8);
    assert_eq!(cmp.verdict, Verdict::Ok);
    assert!(cmp.notes.iter().any(|n| n.contains("scale")), "{cmp:?}");
}

#[test]
fn metric_absent_from_baseline_is_skipped() {
    let scen = scenario("new-metric");
    let base =
        Json::parse("{\"schema\":1,\"scale\":0.05,\"threads\":2,\"counters\":{},\"hist\":{}}")
            .unwrap();
    let cmp = compare(Some(&base), &merged(&scen, 1000), 1.8);
    assert_eq!(cmp.verdict, Verdict::Ok);
    let row = cmp.rows.iter().find(|r| r.metric == "iter_us").unwrap();
    assert_eq!(row.status, "skipped");
}

#[test]
fn counters_are_informational_never_gated() {
    let scen = scenario("counters");
    let base = Json::parse(&merged(&scen, 1000).bench_file_json("ci")).unwrap();
    let mut fresh = merged(&scen, 1000);
    *fresh.counters.get_mut("steals").unwrap() = 4000.0; // 1000x more steals
    let cmp = compare(Some(&base), &fresh, 1.8);
    assert_eq!(cmp.verdict, Verdict::Ok);
    let row = cmp
        .rows
        .iter()
        .find(|r| r.metric == "counter:steals")
        .unwrap();
    assert_eq!(row.status, "info");
}

// ---- suite registry ------------------------------------------------------

#[test]
fn ci_suite_is_a_subset_of_full_and_large_enough() {
    let ci = suite("ci");
    let full = suite("full");
    // The acceptance bar: >= 5 schema-versioned trajectory files from ci.
    assert!(ci.len() >= 5, "ci suite too small: {}", ci.len());
    for s in &ci {
        assert!(
            full.iter().any(|f| f.name == s.name),
            "{} not in full",
            s.name
        );
    }
    assert!(suite("nope").is_empty());
    // Every scenario must be invocable through cargo with pinned scale.
    for s in &full {
        assert_eq!(s.command[0], "cargo");
        assert!(
            s.env.iter().any(|(k, _)| k == "SPDISTAL_SCALE"),
            "{}",
            s.name
        );
    }
}

#[test]
fn render_delta_table_mentions_notes_and_verdict() {
    let cmp = Comparison {
        rows: vec![],
        notes: vec!["no baseline — recording first trajectory point".to_string()],
        verdict: Verdict::Ok,
    };
    let table = render_delta_table("x", &cmp);
    assert!(table.contains("no baseline"));
    assert!(table.contains("verdict[x]: ok"));
}
