//! Criterion micro-benchmarks: real wall-time of the leaf kernels and the
//! end-to-end compile+execute pipeline for each evaluation kernel
//! (complementing the figure binaries, which report modeled time).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::level_funcs::{
    equal_coord_bounds, nonzero_partition, partition_tensor, universe_partition,
};
use spdistal::prelude::Trace;
use spdistal_bench::{make_inputs, run_spdistal, Kern};
use spdistal_runtime::MachineProfile;
use spdistal_sparse::{dataset, generate};

/// Dataset scale: `SPDISTAL_SCALE` when set (the harness pins it), else
/// the historical 0.2 micro-benchmark size.
fn scale() -> f64 {
    std::env::var("SPDISTAL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2)
}

fn leaf_kernels(c: &mut Criterion) {
    let b = dataset::by_name("uk-2005").unwrap().generate(scale());
    let n = b.dims()[0];
    let x = generate::dense_vec(b.dims()[1], 1);
    let colors = 8;
    let row_part = partition_tensor(
        &b,
        0,
        universe_partition(&b, 0, &equal_coord_bounds(n, colors)),
    );
    let nz_part = partition_tensor(&b, 1, nonzero_partition(&b, 1, colors));

    let mut g = c.benchmark_group("leaf_spmv");
    g.bench_function("row_based", |bench| {
        bench.iter(|| {
            let mut out = vec![0.0; n];
            for col in 0..colors {
                spdistal::kernels::matrix::spmv_color(
                    &b,
                    &row_part,
                    col,
                    None,
                    &x,
                    &spdistal::OutVals::new(&mut out),
                );
            }
            out
        })
    });
    g.bench_function("nonzero_based", |bench| {
        bench.iter(|| {
            let mut out = vec![0.0; n];
            for col in 0..colors {
                spdistal::kernels::matrix::spmv_color(
                    &b,
                    &nz_part,
                    col,
                    None,
                    &x,
                    &spdistal::OutVals::new(&mut out),
                );
            }
            out
        })
    });
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    let profile = MachineProfile::lassen_cpu();
    let mat = dataset::by_name("nlpkkt240").unwrap().generate(scale());
    let t3 = dataset::by_name("nell-2").unwrap().generate(scale());
    let mut g = c.benchmark_group("compile_and_run");
    for kern in [Kern::SpMv, Kern::SpMm, Kern::SpAdd3, Kern::Sddmm] {
        let inputs = make_inputs(kern, &mat);
        let nonzero = kern == Kern::Sddmm;
        g.bench_with_input(
            BenchmarkId::new("matrix", kern.name()),
            &inputs,
            |b, inp| b.iter(|| run_spdistal(kern, inp, 4, &profile, nonzero).unwrap()),
        );
    }
    for kern in [Kern::SpTtv, Kern::SpMttkrp] {
        let inputs = make_inputs(kern, &t3);
        g.bench_with_input(
            BenchmarkId::new("tensor", kern.name()),
            &inputs,
            |b, inp| b.iter(|| run_spdistal(kern, inp, 4, &profile, false).unwrap()),
        );
    }
    g.finish();
}

/// One timed compile+execute pass per kernel into the run report: each
/// kernel's end-to-end wall latency lands in a `<kern>_e2e_ns` histogram
/// (and the count of completed kernels in a counter) so the harness can
/// persist and gate the micro-benchmark trajectory.
fn kernel_report(_c: &mut Criterion) {
    const RUNS: usize = 3;
    let trace = Trace::enabled();
    let profile = MachineProfile::lassen_cpu();
    let mat = dataset::by_name("nlpkkt240").unwrap().generate(scale());
    let t3 = dataset::by_name("nell-2").unwrap().generate(scale());
    let mut kernels_ok = 0u64;
    let mut run = |kern: Kern, b: &spdistal_sparse::SpTensor, nonzero: bool| {
        let inputs = make_inputs(kern, b);
        let hist = format!("{}_e2e_ns", kern.name().to_lowercase());
        for _ in 0..RUNS {
            let t0 = Instant::now();
            run_spdistal(kern, &inputs, 4, &profile, nonzero).unwrap();
            trace.observe_ns(&hist, t0.elapsed().as_nanos() as u64);
        }
        kernels_ok += 1;
    };
    for kern in [Kern::SpMv, Kern::SpMm, Kern::SpAdd3, Kern::Sddmm] {
        run(kern, &mat, kern == Kern::Sddmm);
    }
    for kern in [Kern::SpTtv, Kern::SpMttkrp] {
        run(kern, &t3, false);
    }
    trace.add("kernels_ok", kernels_ok);
    println!("run_report_json={}", trace.run_report_json("kernels"));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = leaf_kernels, end_to_end, kernel_report
}
criterion_main!(benches);
