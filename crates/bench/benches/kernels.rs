//! Criterion micro-benchmarks: real wall-time of the leaf kernels and the
//! end-to-end compile+execute pipeline for each evaluation kernel
//! (complementing the figure binaries, which report modeled time).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::level_funcs::{
    equal_coord_bounds, nonzero_partition, partition_tensor, universe_partition,
};
use spdistal::prelude::Trace;
use spdistal_bench::{make_inputs, run_spdistal, run_spdistal_traced, Kern};
use spdistal_ir::Format;
use spdistal_runtime::MachineProfile;
use spdistal_sparse::{convert, dataset, generate};

/// Dataset scale: `SPDISTAL_SCALE` when set (the harness pins it), else
/// the historical 0.2 micro-benchmark size.
fn scale() -> f64 {
    std::env::var("SPDISTAL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2)
}

fn leaf_kernels(c: &mut Criterion) {
    let b = dataset::by_name("uk-2005").unwrap().generate(scale());
    let n = b.dims()[0];
    let x = generate::dense_vec(b.dims()[1], 1);
    let colors = 8;
    let row_part = partition_tensor(
        &b,
        0,
        universe_partition(&b, 0, &equal_coord_bounds(n, colors)),
    );
    let nz_part = partition_tensor(&b, 1, nonzero_partition(&b, 1, colors));

    let mut g = c.benchmark_group("leaf_spmv");
    g.bench_function("row_based", |bench| {
        bench.iter(|| {
            let mut out = vec![0.0; n];
            for col in 0..colors {
                spdistal::kernels::matrix::spmv_color(
                    &b,
                    &row_part,
                    col,
                    None,
                    &x,
                    &spdistal::OutVals::new(&mut out),
                );
            }
            out
        })
    });
    g.bench_function("nonzero_based", |bench| {
        bench.iter(|| {
            let mut out = vec![0.0; n];
            for col in 0..colors {
                spdistal::kernels::matrix::spmv_color(
                    &b,
                    &nz_part,
                    col,
                    None,
                    &x,
                    &spdistal::OutVals::new(&mut out),
                );
            }
            out
        })
    });
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    let profile = MachineProfile::lassen_cpu();
    let mat = dataset::by_name("nlpkkt240").unwrap().generate(scale());
    let t3 = dataset::by_name("nell-2").unwrap().generate(scale());
    let mut g = c.benchmark_group("compile_and_run");
    for kern in [Kern::SpMv, Kern::SpMm, Kern::SpAdd3, Kern::Sddmm] {
        let inputs = make_inputs(kern, &mat);
        let nonzero = kern == Kern::Sddmm;
        g.bench_with_input(
            BenchmarkId::new("matrix", kern.name()),
            &inputs,
            |b, inp| b.iter(|| run_spdistal(kern, inp, 4, &profile, nonzero).unwrap()),
        );
    }
    for kern in [Kern::SpTtv, Kern::SpMttkrp] {
        let inputs = make_inputs(kern, &t3);
        g.bench_with_input(
            BenchmarkId::new("tensor", kern.name()),
            &inputs,
            |b, inp| b.iter(|| run_spdistal(kern, inp, 4, &profile, false).unwrap()),
        );
    }
    g.finish();
}

/// One timed compile+execute pass per kernel into the run report: each
/// kernel's end-to-end wall latency lands in a `<kern>_e2e_ns` histogram
/// (and the count of completed kernels in a counter) so the harness can
/// persist and gate the micro-benchmark trajectory.
///
/// Every run is traced, so the specialized-kernel dispatch mix
/// (`kernel.specialized` / `kernel.fallback`) lands in the same report.
/// Two extra families cover the specialized layer itself:
///
/// * `<kern>_<fmt>_e2e_ns` — the blessed matrix kernels end-to-end with
///   the driver stored as DCSR and COO (the plain `<kern>_e2e_ns` is the
///   CSR variant);
/// * `<kern>_<fmt>_{walk,spec}_ns` — the generic partitioned walker vs
///   the monomorphized kernel on identical leaf work, the committed
///   evidence for the specialization speedup.
fn kernel_report(_c: &mut Criterion) {
    const RUNS: usize = 3;
    let trace = Trace::enabled();
    let profile = MachineProfile::lassen_cpu();
    let mat = dataset::by_name("nlpkkt240").unwrap().generate(scale());
    let t3 = dataset::by_name("nell-2").unwrap().generate(scale());
    let mut kernels_ok = 0u64;
    {
        let mut run = |kern: Kern, b: &spdistal_sparse::SpTensor, nonzero: bool| {
            let inputs = make_inputs(kern, b);
            let hist = format!("{}_e2e_ns", kern.name().to_lowercase());
            for _ in 0..RUNS {
                let t0 = Instant::now();
                run_spdistal_traced(kern, &inputs, 4, &profile, nonzero, None, Some(&trace))
                    .unwrap();
                trace.observe_ns(&hist, t0.elapsed().as_nanos() as u64);
            }
            kernels_ok += 1;
        };
        for kern in [Kern::SpMv, Kern::SpMm, Kern::SpAdd3, Kern::Sddmm] {
            run(kern, &mat, kern == Kern::Sddmm);
        }
        for kern in [Kern::SpTtv, Kern::SpMttkrp] {
            run(kern, &t3, false);
        }
    }
    // Per-format end-to-end variants of the blessed matrix kernels.
    let variants = [
        ("dcsr", convert::to_dcsr(&mat), Format::blocked_dcsr()),
        ("coo", convert::to_coo_format(&mat), Format::blocked_coo()),
    ];
    for (fname, b, fmt) in &variants {
        for kern in [Kern::SpMv, Kern::SpMm, Kern::Sddmm] {
            let inputs = make_inputs(kern, b);
            let hist = format!("{}_{fname}_e2e_ns", kern.name().to_lowercase());
            for _ in 0..RUNS {
                let t0 = Instant::now();
                run_spdistal_traced(
                    kern,
                    &inputs,
                    4,
                    &profile,
                    false,
                    Some(fmt.clone()),
                    Some(&trace),
                )
                .unwrap();
                trace.observe_ns(&hist, t0.elapsed().as_nanos() as u64);
            }
            kernels_ok += 1;
        }
    }
    specialization_report(&trace, 5);
    trace.add("kernels_ok", kernels_ok);
    println!("run_report_json={}", trace.run_report_json("kernels"));
}

/// Identical leaf work through the generic partitioned walker and the
/// monomorphized kernel, per blessed matrix format: `<kern>_<fmt>_walk_ns`
/// vs `<kern>_<fmt>_spec_ns` in the persisted report pin the
/// specialization speedup (the tentpole's >= 2x target for CSR SpMV/SpMM).
fn specialization_report(trace: &Trace, runs: usize) {
    use spdistal::kernels::specialized::{self, SpecializedKernel};
    use spdistal::kernels::{matrix, LeafKernel};
    use spdistal::OutVals;

    // Passes per timed observation: single passes are tens of
    // microseconds, small enough for scheduler noise to double them, so
    // each histogram sample is the mean of `REPS` back-to-back passes.
    const REPS: u32 = 4;
    let colors = 8;
    let base = dataset::by_name("uk-2005").unwrap().generate(scale());
    let x = generate::dense_vec(base.dims()[1], 1);
    let cm = generate::dense_buffer(base.dims()[1], spdistal_bench::DENSE_WIDTH, 2);
    let jdim = spdistal_bench::DENSE_WIDTH;
    let n = base.dims()[0];
    let formats = [
        ("csr", convert::to_csr(&base)),
        ("dcsr", convert::to_dcsr(&base)),
        ("coo", convert::to_coo_format(&base)),
    ];
    for (fname, b) in &formats {
        let part = partition_tensor(
            b,
            0,
            universe_partition(b, 0, &equal_coord_bounds(n, colors)),
        );
        // One untimed warm-up pass per format so the first timed walk does
        // not eat all the cold-cache misses.
        let mut warm = vec![0.0; n];
        for col in 0..colors {
            matrix::spmv_color(b, &part, col, None, &x, &OutVals::new(&mut warm));
        }
        let sig = specialized::storage_signature(b);
        let Some(SpecializedKernel::SpMv(spec_mv)) = specialized::lookup(&LeafKernel::SpMv, &sig)
        else {
            panic!("SpMv on {fname} must be blessed");
        };
        let Some(SpecializedKernel::SpMm(spec_mm)) =
            specialized::lookup(&LeafKernel::SpMm { jdim }, &sig)
        else {
            panic!("SpMm on {fname} must be blessed");
        };
        for _ in 0..runs {
            let t0 = Instant::now();
            for _ in 0..REPS {
                let mut out = vec![0.0; n];
                for col in 0..colors {
                    matrix::spmv_color(b, &part, col, None, &x, &OutVals::new(&mut out));
                }
            }
            let per_pass = t0.elapsed().as_nanos() as u64 / u64::from(REPS);
            trace.observe_ns(&format!("spmv_{fname}_walk_ns"), per_pass);
            let t0 = Instant::now();
            for _ in 0..REPS {
                let mut out = vec![0.0; n];
                for col in 0..colors {
                    spec_mv(b, &part, col, None, &x, &OutVals::new(&mut out));
                }
            }
            let per_pass = t0.elapsed().as_nanos() as u64 / u64::from(REPS);
            trace.observe_ns(&format!("spmv_{fname}_spec_ns"), per_pass);
            let t0 = Instant::now();
            for _ in 0..REPS {
                let mut out = vec![0.0; n * jdim];
                for col in 0..colors {
                    matrix::spmm_color(b, &part, col, None, &cm, jdim, &OutVals::new(&mut out));
                }
            }
            let per_pass = t0.elapsed().as_nanos() as u64 / u64::from(REPS);
            trace.observe_ns(&format!("spmm_{fname}_walk_ns"), per_pass);
            let t0 = Instant::now();
            for _ in 0..REPS {
                let mut out = vec![0.0; n * jdim];
                for col in 0..colors {
                    spec_mm(b, &part, col, None, &cm, jdim, &OutVals::new(&mut out));
                }
            }
            let per_pass = t0.elapsed().as_nanos() as u64 / u64::from(REPS);
            trace.observe_ns(&format!("spmm_{fname}_spec_ns"), per_pass);
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = leaf_kernels, end_to_end, kernel_report
}
criterion_main!(benches);
