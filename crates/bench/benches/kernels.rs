//! Criterion micro-benchmarks: real wall-time of the leaf kernels and the
//! end-to-end compile+execute pipeline for each evaluation kernel
//! (complementing the figure binaries, which report modeled time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::level_funcs::{
    equal_coord_bounds, nonzero_partition, partition_tensor, universe_partition,
};
use spdistal_bench::{make_inputs, run_spdistal, Kern};
use spdistal_runtime::MachineProfile;
use spdistal_sparse::{dataset, generate};

fn leaf_kernels(c: &mut Criterion) {
    let b = dataset::by_name("uk-2005").unwrap().generate(0.2);
    let n = b.dims()[0];
    let x = generate::dense_vec(b.dims()[1], 1);
    let colors = 8;
    let row_part = partition_tensor(
        &b,
        0,
        universe_partition(&b, 0, &equal_coord_bounds(n, colors)),
    );
    let nz_part = partition_tensor(&b, 1, nonzero_partition(&b, 1, colors));

    let mut g = c.benchmark_group("leaf_spmv");
    g.bench_function("row_based", |bench| {
        bench.iter(|| {
            let mut out = vec![0.0; n];
            for col in 0..colors {
                spdistal::kernels::matrix::spmv_color(
                    &b,
                    &row_part,
                    col,
                    None,
                    &x,
                    &spdistal::OutVals::new(&mut out),
                );
            }
            out
        })
    });
    g.bench_function("nonzero_based", |bench| {
        bench.iter(|| {
            let mut out = vec![0.0; n];
            for col in 0..colors {
                spdistal::kernels::matrix::spmv_color(
                    &b,
                    &nz_part,
                    col,
                    None,
                    &x,
                    &spdistal::OutVals::new(&mut out),
                );
            }
            out
        })
    });
    g.finish();
}

fn end_to_end(c: &mut Criterion) {
    let profile = MachineProfile::lassen_cpu();
    let mat = dataset::by_name("nlpkkt240").unwrap().generate(0.2);
    let t3 = dataset::by_name("nell-2").unwrap().generate(0.2);
    let mut g = c.benchmark_group("compile_and_run");
    for kern in [Kern::SpMv, Kern::SpMm, Kern::SpAdd3, Kern::Sddmm] {
        let inputs = make_inputs(kern, &mat);
        let nonzero = kern == Kern::Sddmm;
        g.bench_with_input(
            BenchmarkId::new("matrix", kern.name()),
            &inputs,
            |b, inp| b.iter(|| run_spdistal(kern, inp, 4, &profile, nonzero).unwrap()),
        );
    }
    for kern in [Kern::SpTtv, Kern::SpMttkrp] {
        let inputs = make_inputs(kern, &t3);
        g.bench_with_input(
            BenchmarkId::new("tensor", kern.name()),
            &inputs,
            |b, inp| b.iter(|| run_spdistal(kern, inp, 4, &profile, false).unwrap()),
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = leaf_kernels, end_to_end
}
criterion_main!(benches);
