//! Split vs. unsplit execution on *skewed* inputs at equal thread count —
//! the workloads whose critical color gates the whole launch.
//!
//! Two inputs model the paper's worst load-balance cases:
//!
//! * a hub-clustered R-MAT matrix (`generate::rmat_clustered`): the
//!   twitter7/web-crawl row-degree skew, concentrated so a blocked row
//!   distribution hands one color most of the non-zeros (SpMV);
//! * a Zipf-sliced 3-tensor (`generate::tensor3_skewed`): the
//!   Freebase/NELL slice skew under the CP-ALS SpMTTKRP kernel.
//!
//! Both run under the same `ExecMode::Parallel(T)`; only the
//! [`SplitPolicy`] changes. `Off` is the one-closure-per-color execution
//! (wall-clock floored by the critical color); `Auto` chunks dominant
//! colors into spans idle workers steal. The summary table prints the
//! measured critical color next to both wall-clocks, so the headroom and
//! the recovered fraction are visible even where a small host caps the
//! absolute speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::prelude::*;
use spdistal::{access, assign, schedule_outer_dim, Plan};
use spdistal_sparse::{dense_matrix, dense_vector, generate};

const PIECES: usize = 8;
const RANK: usize = 16;

fn spmv_skewed() -> (Context, Plan) {
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    let b = generate::rmat_clustered(13, 800_000, 0.9, 21);
    let n = b.dims()[0];
    ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
        .unwrap();
    ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
    ctx.add_tensor(
        "c",
        dense_vector(generate::dense_vec(n, 22)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
    let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
    let plan = ctx.compile(&stmt, &sched).unwrap();
    (ctx, plan)
}

fn mttkrp_skewed() -> (Context, Plan) {
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    let dims = [1024usize, 256, 256];
    let b = generate::tensor3_skewed(dims, 400_000, 1.1, 23);
    ctx.add_tensor("B", b, Format::blocked_csf3()).unwrap();
    ctx.add_tensor(
        "A",
        dense_matrix(dims[0], RANK, vec![0.0; dims[0] * RANK]),
        Format::blocked_dense_matrix(),
    )
    .unwrap();
    ctx.add_tensor(
        "C",
        dense_matrix(dims[1], RANK, generate::dense_buffer(dims[1], RANK, 24)),
        Format::replicated_dense_matrix(),
    )
    .unwrap();
    ctx.add_tensor(
        "D",
        dense_matrix(dims[2], RANK, generate::dense_buffer(dims[2], RANK, 25)),
        Format::replicated_dense_matrix(),
    )
    .unwrap();
    let [i, l, j, k] = ctx.fresh_vars(["i", "l", "j", "k"]);
    let stmt = assign(
        "A",
        &[i, l],
        access("B", &[i, j, k]) * access("C", &[j, l]) * access("D", &[k, l]),
    );
    let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
    let plan = ctx.compile(&stmt, &sched).unwrap();
    (ctx, plan)
}

fn workloads() -> Vec<(&'static str, Context, Plan)> {
    let (spmv_ctx, spmv_plan) = spmv_skewed();
    let (mttkrp_ctx, mttkrp_plan) = mttkrp_skewed();
    vec![
        ("SpMV/rmat_clustered", spmv_ctx, spmv_plan),
        ("SpMTTKRP/tensor3_skewed", mttkrp_ctx, mttkrp_plan),
    ]
}

/// Equal thread count for both policies; at least 2 so the pool (and
/// stealing) is real even on a single-core host.
fn threads() -> usize {
    ExecMode::Parallel(0).threads().max(2)
}

fn split_vs_unsplit(c: &mut Criterion) {
    let mode = ExecMode::Parallel(threads());
    let mut g = c.benchmark_group("skewed_exec");
    for (name, mut ctx, plan) in workloads() {
        for (label, policy) in [("unsplit", SplitPolicy::Off), ("split", SplitPolicy::Auto)] {
            ctx.set_split_policy(policy);
            g.bench_with_input(BenchmarkId::new(name, label), &(), |b, ()| {
                b.iter(|| ctx.run_with_mode(&plan, mode).unwrap().wall_time)
            });
        }
    }
    g.finish();
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The headline table: compute wall-clock and critical-color time per
/// policy, at the same thread count.
fn skew_table(_c: &mut Criterion) {
    const RUNS: usize = 7;
    let t = threads();
    let mode = ExecMode::Parallel(t);
    println!(
        "\nskewed inputs, unsplit vs split at {t} threads, {PIECES} colors \
         (imbalance = modeled nnz skew; crit = measured critical color):"
    );
    for (name, mut ctx, plan) in workloads() {
        let imbalance = plan.inputs[0].part.vals.imbalance();
        let mut measure = |policy: SplitPolicy| {
            ctx.set_split_policy(policy);
            let results: Vec<_> = (0..RUNS)
                .map(|_| ctx.run_with_mode(&plan, mode).unwrap())
                .collect();
            let wall = median(results.iter().map(|r| r.wall_time).collect());
            let crit = median(
                results
                    .iter()
                    .map(|r| r.sched.critical_task_seconds)
                    .collect(),
            );
            let last = results.last().unwrap();
            (wall, crit, last.sched.spans, last.sched.steals)
        };
        let (unsplit_wall, unsplit_crit, _, _) = measure(SplitPolicy::Off);
        let (split_wall, split_crit, spans, steals) = measure(SplitPolicy::Auto);
        println!(
            "  {name:24} imbalance {imbalance:5.2}x\n\
             \x20   unsplit: {:8.3} ms wall (crit color {:8.3} ms)\n\
             \x20   split  : {:8.3} ms wall (crit color {:8.3} ms, {spans} spans, {steals} steals)\n\
             \x20   -> {:.2}x at equal thread count",
            unsplit_wall * 1e3,
            unsplit_crit * 1e3,
            split_wall * 1e3,
            split_crit * 1e3,
            unsplit_wall / split_wall.max(1e-12),
        );
    }
    println!("(outputs are bit-identical across policies; simulated time never moves)\n");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = split_vs_unsplit, skew_table
}
criterion_main!(benches);
