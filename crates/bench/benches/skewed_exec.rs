//! Split vs. unsplit execution on *skewed* inputs at equal thread count —
//! the workloads whose critical color gates the whole launch — driven
//! through the `Program` front-end.
//!
//! Two inputs model the paper's worst load-balance cases:
//!
//! * a hub-clustered R-MAT matrix (`generate::rmat_clustered`): the
//!   twitter7/web-crawl row-degree skew, concentrated so a blocked row
//!   distribution hands one color most of the non-zeros (SpMV);
//! * a Zipf-sliced 3-tensor (`generate::tensor3_skewed`): the
//!   Freebase/NELL slice skew under the CP-ALS SpMTTKRP kernel.
//!
//! Both run under the same `ExecMode::Parallel(T)`; only the
//! [`SplitPolicy`] changes (via `CompiledProgram::set_split_policy`).
//! `Off` is the one-closure-per-color execution (wall-clock floored by the
//! critical color); `Auto` chunks dominant colors into spans idle workers
//! steal. The summary table prints the measured critical color next to
//! both wall-clocks, so the headroom and the recovered fraction are
//! visible even where a small host caps the absolute speedup. The
//! statements are pinned to the outer-dimension schedule (not `Auto`) —
//! the point here is the executor's intra-color splitting, not the
//! auto-scheduler's escape to a non-zero distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::prelude::*;
use spdistal::{access, assign};
use spdistal_sparse::{dense_matrix, dense_vector, generate};

const PIECES: usize = 8;
const RANK: usize = 16;

fn spmv_skewed(threads: usize, trace: &Trace) -> CompiledProgram {
    let b = generate::rmat_clustered(13, 800_000, 0.9, 21);
    let n = b.dims()[0];
    Program::on(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()))
        .exec_mode(ExecMode::Parallel(threads))
        .trace(trace.clone())
        .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
        .tensor("B", Format::blocked_csr(), b)
        .tensor(
            "c",
            Format::replicated_dense_vec(),
            dense_vector(generate::dense_vec(n, 22)),
        )
        .stmt("a(i) = B(i,j) * c(j)")
        .schedule(ScheduleSpec::outer_dim())
        .build()
        .unwrap()
}

fn mttkrp_skewed(threads: usize, trace: &Trace) -> CompiledProgram {
    let dims = [1024usize, 256, 256];
    let b = generate::tensor3_skewed(dims, 400_000, 1.1, 23);
    Program::on(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()))
        .exec_mode(ExecMode::Parallel(threads))
        .trace(trace.clone())
        .tensor("B", Format::blocked_csf3(), b)
        .tensor(
            "A",
            Format::blocked_dense_matrix(),
            dense_matrix(dims[0], RANK, vec![0.0; dims[0] * RANK]),
        )
        .tensor(
            "C",
            Format::replicated_dense_matrix(),
            dense_matrix(dims[1], RANK, generate::dense_buffer(dims[1], RANK, 24)),
        )
        .tensor(
            "D",
            Format::replicated_dense_matrix(),
            dense_matrix(dims[2], RANK, generate::dense_buffer(dims[2], RANK, 25)),
        )
        .stmt_with(|vars| {
            let [i, l, j, k] = vars.fresh_n(["i", "l", "j", "k"]);
            assign(
                "A",
                &[i, l],
                access("B", &[i, j, k]) * access("C", &[j, l]) * access("D", &[k, l]),
            )
        })
        .schedule(ScheduleSpec::outer_dim())
        .build()
        .unwrap()
}

fn workloads(threads: usize, trace: &Trace) -> Vec<(&'static str, CompiledProgram)> {
    vec![
        ("SpMV/rmat_clustered", spmv_skewed(threads, trace)),
        ("SpMTTKRP/tensor3_skewed", mttkrp_skewed(threads, trace)),
    ]
}

/// Equal thread count for both policies; at least 2 so the pool (and
/// stealing) is real even on a single-core host. The harness pins this
/// via `SPD_BENCH_THREADS` for reproducible trajectory points.
fn threads() -> usize {
    spdistal_bench::bench_threads(2)
}

/// Run the program once and return the statement's compute wall-clock.
fn once(program: &mut CompiledProgram) -> f64 {
    program.run().unwrap();
    program.result(0).unwrap().wall_time
}

fn split_vs_unsplit(c: &mut Criterion) {
    let mut g = c.benchmark_group("skewed_exec");
    for (name, mut program) in workloads(threads(), &Trace::disabled()) {
        for (label, policy) in [("unsplit", SplitPolicy::Off), ("split", SplitPolicy::Auto)] {
            program.set_split_policy(policy);
            g.bench_with_input(BenchmarkId::new(name, label), &(), |b, ()| {
                b.iter(|| once(&mut program))
            });
        }
    }
    g.finish();
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The headline table: compute wall-clock and critical-color time per
/// policy, at the same thread count.
fn skew_table(_c: &mut Criterion) {
    const RUNS: usize = 7;
    let t = threads();
    let trace = Trace::enabled();
    let mut max_skew = 0.0f64;
    println!(
        "\nskewed inputs, unsplit vs split at {t} threads, {PIECES} colors \
         (crit = measured critical color):"
    );
    for (name, mut program) in workloads(t, &trace) {
        let mut measure = |policy: SplitPolicy| {
            program.set_split_policy(policy);
            let results: Vec<(f64, f64, usize, usize)> = (0..RUNS)
                .map(|_| {
                    let wall = once(&mut program);
                    let sched = &program.result(0).unwrap().sched;
                    (wall, sched.critical_task_seconds, sched.spans, sched.steals)
                })
                .collect();
            let wall = median(results.iter().map(|r| r.0).collect());
            let crit = median(results.iter().map(|r| r.1).collect());
            let last = results.last().unwrap();
            (wall, crit, last.2, last.3)
        };
        let (unsplit_wall, unsplit_crit, _, _) = measure(SplitPolicy::Off);
        let (split_wall, split_crit, spans, steals) = measure(SplitPolicy::Auto);
        max_skew = max_skew.max(program.report().stmts[0].task_skew);
        println!(
            "  {name:24}\n\
             \x20   unsplit: {:8.3} ms wall (crit color {:8.3} ms)\n\
             \x20   split  : {:8.3} ms wall (crit color {:8.3} ms, {spans} spans, {steals} steals)\n\
             \x20   -> {:.2}x at equal thread count",
            unsplit_wall * 1e3,
            unsplit_crit * 1e3,
            split_wall * 1e3,
            split_crit * 1e3,
            unsplit_wall / split_wall.max(1e-12),
        );
    }
    // Worst measured skew as a millis-scaled counter, so the persisted
    // JSON report carries it alongside the steal counts and quantiles.
    trace.add("task_skew_milli", (max_skew * 1e3) as u64);
    println!("run_report_json={}", trace.run_report_json("skewed_exec"));
    println!("(outputs are bit-identical across policies; simulated time never moves)\n");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = split_vs_unsplit, skew_table
}
criterion_main!(benches);
