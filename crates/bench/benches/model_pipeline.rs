//! Modeled (simulated) sequential vs. graph-ordered CP-ALS — the
//! discrete-event counterpart of `pipeline_exec`.
//!
//! One Jacobi CP-ALS sweep issues three flow-independent SpMTTKRP mode
//! updates. Launch-at-a-time flushes replay each launch's model phase
//! behind a global serialization point, so the modeled total is the
//! *sequential modeled sum* (Σ per-launch sequential spans). A pipelined
//! flush replays the model phase launch-graph-ordered
//! (`Runtime::index_launch_after`): each launch starts at
//! `max(predecessor finishes, processor availability)`, so the three
//! independent launches overlap on the model timeline and the *graph-
//! ordered modeled makespan* undercuts the sequential sum whenever their
//! critical processors differ — here mode 0 is slice-skewed (one hub
//! processor) while modes 1/2 are near-uniform.
//!
//! The headline number is the **modeled-overlap ratio** (sequential sum ÷
//! graph-ordered makespan), emitted as `modeled_overlap=<r>` so perf
//! trajectory files can pick it up. Outputs stay bit-identical and the
//! canonical simulated time (`ExecResult::time`) is issue-order-invariant;
//! only the modeled milestones observe the dependence structure.

use criterion::{criterion_group, criterion_main, Criterion};

use spdistal::prelude::*;
use spdistal::{access, assign, schedule_outer_dim, Plan};
use spdistal_sparse::convert::permuted;
use spdistal_sparse::{dense_matrix, generate};

const PIECES: usize = 8;
const RANK: usize = 16;
const DIMS: [usize; 3] = [800, 600, 700];
const NNZ: usize = 150_000;

/// A 3-tensor with a *different* hub region per mode: one third of the
/// non-zeros cluster in low mode-0 slices, one third in middle mode-1
/// slices, one third in high mode-2 slices (the multi-mode skew of
/// real data-mining tensors, where each mode has its own heavy entities).
/// Under a blocked distribution each MTTKRP mode update then has a
/// different critical processor — the case where deferred execution's
/// modeled overlap is substantial.
fn multi_hub_tensor() -> spdistal_sparse::SpTensor {
    use rand::{Rng, SeedableRng};
    use spdistal_sparse::CooTensor;
    let mut rng = rand::rngs::StdRng::seed_from_u64(29);
    let mut coo = CooTensor::new(DIMS.to_vec());
    let hub = |d: usize| (d / 10).max(1);
    for k in 0..NNZ {
        let mode = k % 3;
        let mut c = [0i64; 3];
        for (m, cm) in c.iter_mut().enumerate() {
            let d = DIMS[m];
            *cm = if m == mode {
                // Hub band: mode 0 low, mode 1 middle, mode 2 high.
                let base = m * (d - hub(d)) / 2;
                (base + rng.gen_range(0..hub(d))) as i64
            } else {
                rng.gen_range(0..d) as i64
            };
        }
        coo.push(&c, rng.gen_range(0.1..1.0));
    }
    coo.build(&generate::CSF3)
}

/// The CP-ALS sweep workload over tensor `b`.
fn workload(b: spdistal_sparse::SpTensor) -> (Context, Vec<Plan>) {
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    ctx.add_tensor("B0", b.clone(), Format::blocked_csf3())
        .unwrap();
    ctx.add_tensor(
        "B1",
        permuted(&b, &[1, 0, 2], &generate::CSF3),
        Format::blocked_csf3(),
    )
    .unwrap();
    ctx.add_tensor(
        "B2",
        permuted(&b, &[2, 0, 1], &generate::CSF3),
        Format::blocked_csf3(),
    )
    .unwrap();
    for (name, rows, seed) in [("A", DIMS[0], 1), ("C", DIMS[1], 2), ("D", DIMS[2], 3)] {
        ctx.add_tensor(
            name,
            dense_matrix(rows, RANK, generate::dense_buffer(rows, RANK, seed)),
            Format::replicated_dense_matrix(),
        )
        .unwrap();
    }
    for (name, rows) in [("Anew", DIMS[0]), ("Cnew", DIMS[1]), ("Dnew", DIMS[2])] {
        ctx.add_tensor(
            name,
            dense_matrix(rows, RANK, vec![0.0; rows * RANK]),
            Format::blocked_dense_matrix(),
        )
        .unwrap();
    }
    let mut plans = Vec::new();
    for (out, driver, f1, f2) in [
        ("Anew", "B0", "C", "D"),
        ("Cnew", "B1", "A", "D"),
        ("Dnew", "B2", "A", "C"),
    ] {
        let [m, l, u, v] = ctx.fresh_vars(["m", "l", "u", "v"]);
        let stmt = assign(
            out,
            &[m, l],
            access(driver, &[m, u, v]) * access(f1, &[u, l]) * access(f2, &[v, l]),
        );
        let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
        plans.push(ctx.compile(&stmt, &sched).unwrap());
    }
    (ctx, plans)
}

/// One sweep; returns (modeled sequential sum, modeled makespan).
fn sweep_model(ctx: &mut Context, plans: &[Plan], pipelined: bool) -> (f64, f64) {
    let mut session = Session::new(ctx);
    let (mut seq_sum, mut makespan) = (0.0, 0.0);
    for plan in plans {
        session.submit(plan);
        if !pipelined {
            let report = session.flush().unwrap();
            seq_sum += report.model_seq_sum();
            makespan += report.model_makespan();
        }
    }
    if pipelined {
        let report = session.flush().unwrap();
        seq_sum += report.model_seq_sum();
        makespan += report.model_makespan();
    }
    (seq_sum, makespan)
}

/// The headline table: modeled sequential vs. graph-ordered per input
/// structure. The trajectory line `modeled_overlap=<r>` reports the
/// multi-hub tensor, the case deferred execution targets.
fn modeled_overlap_table(_c: &mut Criterion) {
    println!(
        "\nCP-ALS sweep, modeled on the discrete-event simulator \
         ({PIECES} pieces, 3 independent SpMTTKRP launches):"
    );
    let trace = Trace::enabled();
    let inputs: [(&str, spdistal_sparse::SpTensor); 2] = [
        (
            "mode-0 skew 0.8",
            generate::tensor3_skewed(DIMS, NNZ, 0.8, 23),
        ),
        ("multi-hub", multi_hub_tensor()),
    ];
    let mut headline = 1.0;
    for (label, b) in inputs {
        let (mut ctx, plans) = workload(b);
        ctx.set_trace(trace.clone());
        ctx.set_exec_mode(ExecMode::Parallel(0));
        let (_, lat_span) = sweep_model(&mut ctx, &plans, false);
        let (pipe_sum, pipe_span) = sweep_model(&mut ctx, &plans, true);
        assert!(
            pipe_span <= pipe_sum,
            "graph-ordered modeled makespan must not exceed the sequential sum"
        );
        let ratio = pipe_sum / pipe_span.max(1e-15);
        // Modeled (deterministic) times into the report's histograms: the
        // harness gates on these means, which never move with host noise.
        trace.observe_ns("model_lat_span_ns", (lat_span * 1e9) as u64);
        trace.observe_ns("model_pipe_span_ns", (pipe_span * 1e9) as u64);
        trace.observe_ns("model_seq_sum_ns", (pipe_sum * 1e9) as u64);
        println!(
            "  {label:>15}: launch-at-a-time modeled {:8.3} ms | pipelined modeled \
             {:8.3} ms (sequential sum {:8.3} ms) | overlap {ratio:.3}x",
            lat_span * 1e3,
            pipe_span * 1e3,
            pipe_sum * 1e3,
        );
        headline = ratio;
    }
    trace.add("modeled_overlap_milli", (headline * 1e3) as u64);
    println!("modeled_overlap={headline:.3}");
    println!(
        "run_report_json={}",
        trace.run_report_json("model_pipeline")
    );
    println!("(outputs bit-identical; canonical simulated time is issue-order-invariant)\n");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(2);
    targets = modeled_overlap_table
}
criterion_main!(benches);
