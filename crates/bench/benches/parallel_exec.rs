//! Serial vs. parallel wall-clock for the real leaf kernels, on the
//! workloads the paper's evaluation leans on (SpMV, SpMM, SpMTTKRP).
//!
//! Two views of the same comparison:
//!
//! * criterion timings of the full `run` (compute + model + writeback)
//!   under each [`ExecMode`];
//! * an explicit speedup table over `ExecResult::wall_time` (the isolated
//!   compute phase), printed at the end — on a multi-core host the SpMM
//!   row is the headline number, on a single-core host it honestly
//!   reports ~1x.
//!
//! Simulated time is identical between modes by construction; only real
//! wall-clock moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::prelude::*;
use spdistal::{access, assign, schedule_outer_dim, Plan};
use spdistal_sparse::{dense_matrix, dense_vector, generate};

const PIECES: usize = 8;
const WIDTH: usize = 32;

fn spmv_workload() -> (Context, Plan) {
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    let b = generate::rmat_default(14, 600_000, 11);
    let n = b.dims()[0];
    ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
        .unwrap();
    ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
    ctx.add_tensor(
        "c",
        dense_vector(generate::dense_vec(n, 12)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
    let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
    let plan = ctx.compile(&stmt, &sched).unwrap();
    (ctx, plan)
}

fn spmm_workload() -> (Context, Plan) {
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    let (n, m) = (8192, 8192);
    let b = generate::uniform(n, m, 400_000, 13);
    ctx.add_tensor(
        "A",
        dense_matrix(n, WIDTH, vec![0.0; n * WIDTH]),
        Format::blocked_dense_matrix(),
    )
    .unwrap();
    ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
    ctx.add_tensor(
        "C",
        dense_matrix(m, WIDTH, generate::dense_buffer(m, WIDTH, 14)),
        Format::replicated_dense_matrix(),
    )
    .unwrap();
    let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
    let stmt = assign("A", &[i, j], access("B", &[i, k]) * access("C", &[k, j]));
    let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
    let plan = ctx.compile(&stmt, &sched).unwrap();
    (ctx, plan)
}

fn mttkrp_workload() -> (Context, Plan) {
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    let dims = [2048usize, 2048, 2048];
    let b = generate::tensor3_uniform(dims, 400_000, 15);
    ctx.add_tensor("B", b, Format::blocked_csf3()).unwrap();
    ctx.add_tensor(
        "A",
        dense_matrix(dims[0], WIDTH, vec![0.0; dims[0] * WIDTH]),
        Format::blocked_dense_matrix(),
    )
    .unwrap();
    ctx.add_tensor(
        "C",
        dense_matrix(dims[1], WIDTH, generate::dense_buffer(dims[1], WIDTH, 16)),
        Format::replicated_dense_matrix(),
    )
    .unwrap();
    ctx.add_tensor(
        "D",
        dense_matrix(dims[2], WIDTH, generate::dense_buffer(dims[2], WIDTH, 17)),
        Format::replicated_dense_matrix(),
    )
    .unwrap();
    let [i, l, j, k] = ctx.fresh_vars(["i", "l", "j", "k"]);
    let stmt = assign(
        "A",
        &[i, l],
        access("B", &[i, j, k]) * access("C", &[j, l]) * access("D", &[k, l]),
    );
    let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
    let plan = ctx.compile(&stmt, &sched).unwrap();
    (ctx, plan)
}

fn workloads() -> Vec<(&'static str, Context, Plan)> {
    let (spmv_ctx, spmv_plan) = spmv_workload();
    let (spmm_ctx, spmm_plan) = spmm_workload();
    let (mttkrp_ctx, mttkrp_plan) = mttkrp_workload();
    vec![
        ("SpMV", spmv_ctx, spmv_plan),
        ("SpMM", spmm_ctx, spmm_plan),
        ("SpMTTKRP", mttkrp_ctx, mttkrp_plan),
    ]
}

fn serial_vs_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_exec");
    for (name, mut ctx, plan) in workloads() {
        g.bench_with_input(BenchmarkId::new(name, "serial"), &(), |b, ()| {
            b.iter(|| {
                ctx.run_with_mode(&plan, ExecMode::Serial)
                    .unwrap()
                    .wall_time
            })
        });
        g.bench_with_input(BenchmarkId::new(name, "parallel"), &(), |b, ()| {
            b.iter(|| {
                ctx.run_with_mode(&plan, ExecMode::Parallel(0))
                    .unwrap()
                    .wall_time
            })
        });
    }
    g.finish();
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The headline table: isolated compute-phase wall-clock per mode.
fn speedup_table(_c: &mut Criterion) {
    const RUNS: usize = 7;
    let threads = ExecMode::Parallel(0).threads();
    println!(
        "\ncompute-phase wall-clock, serial vs parallel \
         ({threads} threads, {PIECES} point tasks):"
    );
    for (name, mut ctx, plan) in workloads() {
        let mut measure = |mode: ExecMode| {
            median(
                (0..RUNS)
                    .map(|_| ctx.run_with_mode(&plan, mode).unwrap().wall_time)
                    .collect(),
            )
        };
        let serial = measure(ExecMode::Serial);
        let parallel = measure(ExecMode::Parallel(0));
        println!(
            "  {name:9} serial {:8.3} ms   parallel {:8.3} ms   speedup {:.2}x",
            serial * 1e3,
            parallel * 1e3,
            serial / parallel.max(1e-12),
        );
    }
    println!("(simulated time is mode-independent; outputs are bit-identical)\n");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = serial_vs_parallel, speedup_table
}
criterion_main!(benches);
