//! Plan-cache payoff for repeated-iteration workloads: the same `Program`
//! iterated with a warm cache vs. recompiling every iteration.
//!
//! Repeated-iteration workloads (CP-ALS sweeps, power iteration) re-run
//! identical (statement, schedule, format) triples every pass. Before the
//! `Program` front-end each pass re-ran `compile_and_run`, paying the
//! partitioning code generation (Table I level functions over the whole
//! coordinate tree) every time; the `CompiledProgram` plan cache compiles
//! each triple once and replays the plan.
//!
//! The headline number is the median per-iteration time of the cached
//! program over the cache-cleared program, emitted as
//! `cache_hit_speedup=<r>` for perf trajectory files. Outputs are
//! asserted identical between the two paths — a cached plan replays
//! bit-identically to a fresh compile.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::prelude::*;
use spdistal_sparse::{dense_vector, generate};

const PIECES: usize = 8;
const ITERS: usize = 12;

fn workload(trace: &Trace) -> CompiledProgram {
    let b = generate::rmat_default(12, 200_000, 19);
    let n = b.dims()[0];
    Program::on(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()))
        .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
        .tensor("B", Format::blocked_csr(), b)
        .tensor(
            "c",
            Format::replicated_dense_vec(),
            dense_vector(generate::dense_vec(n, 20)),
        )
        .stmt("a(i) = B(i,j) * c(j)")
        .schedule(ScheduleSpec::outer_dim())
        .trace(trace.clone())
        .build()
        .unwrap()
}

/// Median seconds per iteration over `ITERS` runs; `clear` drops the plan
/// cache before every iteration (the per-iteration-recompile baseline).
fn per_iter_seconds(program: &mut CompiledProgram, clear: bool) -> f64 {
    let mut samples = Vec::with_capacity(ITERS);
    for _ in 0..ITERS {
        if clear {
            program.clear_plan_cache();
        }
        let t0 = Instant::now();
        program.run().unwrap();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn cached_vs_recompiled(c: &mut Criterion) {
    let mut g = c.benchmark_group("program_overhead");
    for (label, clear) in [("recompile-every-iter", true), ("plan-cache", false)] {
        let mut program = workload(&Trace::disabled());
        program.run().unwrap(); // warm: first compile out of the loop
        g.bench_with_input(BenchmarkId::new("spmv_iters", label), &(), |b, ()| {
            b.iter(|| {
                if clear {
                    program.clear_plan_cache();
                }
                program.run().unwrap();
            })
        });
    }
    g.finish();
}

/// The headline line: identical outputs, cache traffic, and the speedup.
/// Both programs share one structured trace, so the `run_report_json=`
/// line carries the combined cache traffic, executor counters, and
/// per-iteration latency quantiles for the perf trajectory.
fn speedup_line(_c: &mut Criterion) {
    let trace = Trace::enabled();
    let mut cached = workload(&trace);
    let mut recompiled = workload(&trace);
    let cached_per_iter = per_iter_seconds(&mut cached, false);
    let recompiled_per_iter = per_iter_seconds(&mut recompiled, true);

    // A cached plan replays bit-identically to a fresh compile.
    let a = cached.value(0).unwrap().as_tensor().unwrap();
    let b = recompiled.value(0).unwrap().as_tensor().unwrap();
    assert!(
        a.vals()
            .iter()
            .zip(b.vals())
            .all(|(x, y)| x.to_bits() == y.to_bits()),
        "cached plan must replay bit-identically to a fresh compile"
    );
    assert_eq!(cached.report().compiles, 1);
    assert_eq!(recompiled.report().compiles, ITERS);

    let ratio = recompiled_per_iter / cached_per_iter.max(1e-12);
    println!(
        "\nSpMV x{ITERS} iterations, {PIECES} colors: \
         recompile-every-iter {:8.3} ms/iter, plan-cache {:8.3} ms/iter",
        recompiled_per_iter * 1e3,
        cached_per_iter * 1e3,
    );
    println!("cache_hit_speedup={ratio:.3}");
    // Millis-scaled ratios as counters, so the persisted JSON report
    // carries them alongside the raw steal/cache counts and quantiles.
    trace.add("cache_hit_speedup_milli", (ratio * 1e3) as u64);
    trace.add(
        "task_skew_milli",
        (cached.report().stmts[0].task_skew * 1e3) as u64,
    );
    println!(
        "run_report_json={}",
        cached.run_report_json("program_overhead")
    );
    println!("(outputs bit-identical; the cache skips Table-I partitioning, not execution)\n");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = cached_vs_recompiled, speedup_line
}
criterion_main!(benches);
