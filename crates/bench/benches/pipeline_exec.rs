//! Launch-at-a-time vs. pipelined wall-clock for a Jacobi CP-ALS sweep —
//! the deferred-execution comparison at **equal thread count**.
//!
//! One sweep updates all three factor matrices with one distributed
//! SpMTTKRP per mode; the modes read only the previous sweep's factors, so
//! the three launches are flow-independent. Launch-at-a-time flushes the
//! session after every submit (each launch drains its own pool pass, the
//! pre-pipeline behavior); pipelined submits all three and flushes once,
//! letting the launch graph prove independence and the driver interleave
//! all points in a single pass. The tensor is skewed, so each launch's
//! critical color dominates its drain — exactly the idle time pipelining
//! reclaims on a multi-core host. On a single-core host both paths do the
//! same work and the table honestly reports ~1x.
//!
//! Outputs are bit-identical between the two paths (asserted at startup);
//! simulated time never moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::prelude::*;
use spdistal::{access, assign, schedule_outer_dim, Plan};
use spdistal_sparse::convert::permuted;
use spdistal_sparse::{dense_matrix, generate};

const PIECES: usize = 8;
const RANK: usize = 32;
const DIMS: [usize; 3] = [2000, 1500, 1800];
const NNZ: usize = 400_000;

/// The CP-ALS sweep workload: context + the three mode-update plans.
fn workload() -> (Context, Vec<Plan>) {
    let b = generate::tensor3_skewed(DIMS, NNZ, 0.8, 41);
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    ctx.add_tensor("B0", b.clone(), Format::blocked_csf3())
        .unwrap();
    ctx.add_tensor(
        "B1",
        permuted(&b, &[1, 0, 2], &generate::CSF3),
        Format::blocked_csf3(),
    )
    .unwrap();
    ctx.add_tensor(
        "B2",
        permuted(&b, &[2, 0, 1], &generate::CSF3),
        Format::blocked_csf3(),
    )
    .unwrap();
    for (name, rows, seed) in [("A", DIMS[0], 1), ("C", DIMS[1], 2), ("D", DIMS[2], 3)] {
        ctx.add_tensor(
            name,
            dense_matrix(rows, RANK, generate::dense_buffer(rows, RANK, seed)),
            Format::replicated_dense_matrix(),
        )
        .unwrap();
    }
    for (name, rows) in [("Anew", DIMS[0]), ("Cnew", DIMS[1]), ("Dnew", DIMS[2])] {
        ctx.add_tensor(
            name,
            dense_matrix(rows, RANK, vec![0.0; rows * RANK]),
            Format::blocked_dense_matrix(),
        )
        .unwrap();
    }
    let mut plans = Vec::new();
    for (out, driver, f1, f2) in [
        ("Anew", "B0", "C", "D"),
        ("Cnew", "B1", "A", "D"),
        ("Dnew", "B2", "A", "C"),
    ] {
        let [m, l, u, v] = ctx.fresh_vars(["m", "l", "u", "v"]);
        let stmt = assign(
            out,
            &[m, l],
            access(driver, &[m, u, v]) * access(f1, &[u, l]) * access(f2, &[v, l]),
        );
        let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
        plans.push(ctx.compile(&stmt, &sched).unwrap());
    }
    (ctx, plans)
}

/// One sweep through a session; returns the summed flush wall-clock.
fn sweep(ctx: &mut Context, plans: &[Plan], pipelined: bool) -> f64 {
    let mut session = Session::new(ctx);
    let mut wall = 0.0;
    for plan in plans {
        session.submit(plan);
        if !pipelined {
            wall += session.flush().unwrap().wall_seconds;
        }
    }
    if pipelined {
        wall += session.flush().unwrap().wall_seconds;
    }
    wall
}

/// Startup invariant: the two paths assemble bit-identical factors.
fn assert_paths_identical() {
    let observe = |pipelined: bool| -> Vec<Vec<u64>> {
        let (mut ctx, plans) = workload();
        ctx.set_exec_mode(ExecMode::Parallel(0));
        sweep(&mut ctx, &plans, pipelined);
        ["Anew", "Cnew", "Dnew"]
            .iter()
            .map(|n| {
                ctx.tensor(n)
                    .unwrap()
                    .data
                    .vals()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    };
    assert_eq!(
        observe(false),
        observe(true),
        "pipelined factors must be bit-identical to launch-at-a-time"
    );
    println!("bit-identity: launch-at-a-time vs pipelined verified ✔\n");
}

fn launch_at_a_time_vs_pipelined(c: &mut Criterion) {
    assert_paths_identical();
    let threads = ExecMode::Parallel(0).threads();
    let mut g = c.benchmark_group("pipeline_exec");
    let (mut ctx, plans) = workload();
    ctx.set_exec_mode(ExecMode::Parallel(0));
    g.bench_with_input(
        BenchmarkId::new("cp_als_sweep", format!("launch-at-a-time/{threads}t")),
        &(),
        |b, ()| b.iter(|| sweep(&mut ctx, &plans, false)),
    );
    g.bench_with_input(
        BenchmarkId::new("cp_als_sweep", format!("pipelined/{threads}t")),
        &(),
        |b, ()| b.iter(|| sweep(&mut ctx, &plans, true)),
    );
    g.finish();
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The headline table: compute-phase wall-clock per path.
fn speedup_table(_c: &mut Criterion) {
    const RUNS: usize = 5;
    let threads = ExecMode::Parallel(0).threads();
    let (mut ctx, plans) = workload();
    ctx.set_exec_mode(ExecMode::Parallel(0));
    let mut measure = |pipelined: bool| {
        median(
            (0..RUNS)
                .map(|_| sweep(&mut ctx, &plans, pipelined))
                .collect(),
        )
    };
    let lat = measure(false);
    let pipe = measure(true);
    println!(
        "\nCP-ALS sweep (3 independent SpMTTKRP launches, {PIECES} point tasks each, \
         {threads} threads):"
    );
    println!(
        "  launch-at-a-time {:8.3} ms   pipelined {:8.3} ms   speedup {:.2}x",
        lat * 1e3,
        pipe * 1e3,
        lat / pipe.max(1e-12),
    );
    println!("(outputs bit-identical; simulated time is pipeline-independent)\n");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = launch_at_a_time_vs_pipelined, speedup_table
}
criterion_main!(benches);
