//! Launch-at-a-time vs. pipelined wall-clock for a Jacobi CP-ALS sweep —
//! the deferred-execution comparison at **equal thread count**, driven
//! through the `Program` front-end.
//!
//! One sweep updates all three factor matrices with one distributed
//! SpMTTKRP per mode; the modes read only the previous sweep's factors, so
//! the three statements are flow-independent. The launch-at-a-time program
//! flushes after every statement (each launch drains its own pool pass,
//! the pre-pipeline behavior); the pipelined program defers the whole
//! sweep into one flush, letting the launch graph prove independence and
//! the driver interleave all points in a single pass. The tensor is
//! skewed, so each launch's critical color dominates its drain — exactly
//! the idle time pipelining reclaims on a multi-core host. On a
//! single-core host both paths do the same work and the table honestly
//! reports ~1x.
//!
//! Outputs are bit-identical between the two paths (asserted at startup);
//! simulated time never moves. The program's plan cache compiles each of
//! the three statements exactly once, no matter how many sweeps run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::prelude::*;
use spdistal::{access, assign};
use spdistal_sparse::convert::permuted;
use spdistal_sparse::{dense_matrix, generate};

const PIECES: usize = 8;
const RANK: usize = 32;
const DIMS: [usize; 3] = [2000, 1500, 1800];
const NNZ: usize = 400_000;

const MODES: [(&str, &str, &str, &str); 3] = [
    ("Anew", "B0", "C", "D"),
    ("Cnew", "B1", "A", "D"),
    ("Dnew", "B2", "A", "C"),
];

/// The CP-ALS sweep as one `Program`: three mode-update statements on the
/// explicit outer-dimension schedule.
fn workload(pipelined: bool) -> CompiledProgram {
    let b = generate::tensor3_skewed(DIMS, NNZ, 0.8, 41);
    let mut program = Program::on(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()))
        .exec_mode(ExecMode::Parallel(0))
        .tensor("B0", Format::blocked_csf3(), b.clone())
        .tensor(
            "B1",
            Format::blocked_csf3(),
            permuted(&b, &[1, 0, 2], &generate::CSF3),
        )
        .tensor(
            "B2",
            Format::blocked_csf3(),
            permuted(&b, &[2, 0, 1], &generate::CSF3),
        );
    for (name, rows, seed) in [("A", DIMS[0], 1), ("C", DIMS[1], 2), ("D", DIMS[2], 3)] {
        program = program.tensor(
            name,
            Format::replicated_dense_matrix(),
            dense_matrix(rows, RANK, generate::dense_buffer(rows, RANK, seed)),
        );
    }
    for (name, rows) in [("Anew", DIMS[0]), ("Cnew", DIMS[1]), ("Dnew", DIMS[2])] {
        program = program.tensor(
            name,
            Format::blocked_dense_matrix(),
            dense_matrix(rows, RANK, vec![0.0; rows * RANK]),
        );
    }
    for (out, driver, f1, f2) in MODES {
        program = program
            .stmt_with(move |vars| {
                let [m, l, u, v] = vars.fresh_n(["m", "l", "u", "v"]);
                assign(
                    out,
                    &[m, l],
                    access(driver, &[m, u, v]) * access(f1, &[u, l]) * access(f2, &[v, l]),
                )
            })
            .schedule(ScheduleSpec::outer_dim());
    }
    if !pipelined {
        program = program.launch_at_a_time();
    }
    program.build().unwrap()
}

/// One sweep; returns the flush wall-clock this iteration added.
fn sweep(program: &mut CompiledProgram) -> f64 {
    let before = program.report().wall_seconds;
    program.run().unwrap();
    program.report().wall_seconds - before
}

/// Startup invariant: the two paths assemble bit-identical factors, and
/// the plan cache compiles each statement exactly once across sweeps.
fn assert_paths_identical() {
    let observe = |pipelined: bool| -> Vec<Vec<u64>> {
        let mut program = workload(pipelined);
        sweep(&mut program);
        sweep(&mut program);
        assert_eq!(program.report().compiles, 3, "one compile per statement");
        assert_eq!(program.report().cache_hits, 3, "second sweep all hits");
        ["Anew", "Cnew", "Dnew"]
            .iter()
            .map(|n| {
                program
                    .context()
                    .tensor(n)
                    .unwrap()
                    .data
                    .vals()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect()
    };
    assert_eq!(
        observe(false),
        observe(true),
        "pipelined factors must be bit-identical to launch-at-a-time"
    );
    println!("bit-identity: launch-at-a-time vs pipelined verified ✔\n");
}

fn launch_at_a_time_vs_pipelined(c: &mut Criterion) {
    assert_paths_identical();
    let threads = ExecMode::Parallel(0).threads();
    let mut g = c.benchmark_group("pipeline_exec");
    let mut lat = workload(false);
    let mut pipe = workload(true);
    g.bench_with_input(
        BenchmarkId::new("cp_als_sweep", format!("launch-at-a-time/{threads}t")),
        &(),
        |b, ()| b.iter(|| sweep(&mut lat)),
    );
    g.bench_with_input(
        BenchmarkId::new("cp_als_sweep", format!("pipelined/{threads}t")),
        &(),
        |b, ()| b.iter(|| sweep(&mut pipe)),
    );
    g.finish();
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The headline table: compute-phase wall-clock per path.
fn speedup_table(_c: &mut Criterion) {
    const RUNS: usize = 5;
    let threads = ExecMode::Parallel(0).threads();
    let measure = |pipelined: bool| {
        let mut program = workload(pipelined);
        median((0..RUNS).map(|_| sweep(&mut program)).collect())
    };
    let lat = measure(false);
    let pipe = measure(true);
    println!(
        "\nCP-ALS sweep (3 independent SpMTTKRP launches, {PIECES} point tasks each, \
         {threads} threads):"
    );
    println!(
        "  launch-at-a-time {:8.3} ms   pipelined {:8.3} ms   speedup {:.2}x",
        lat * 1e3,
        pipe * 1e3,
        lat / pipe.max(1e-12),
    );
    println!("(outputs bit-identical; simulated time is pipeline-independent)\n");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = launch_at_a_time_vs_pipelined, speedup_table
}
criterion_main!(benches);
