//! Criterion micro-benchmarks for the partitioning subsystem: the Table I
//! level functions and the dependent-partitioning operators they rely on —
//! the compile-time cost SpDISTAL pays to specialize data movement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::level_funcs::{
    equal_coord_bounds, nonzero_partition, partition_tensor, universe_partition,
};
use spdistal_runtime::{image_rects, preimage_rects, Partition};
use spdistal_sparse::{generate, Level};

fn partitioning(c: &mut Criterion) {
    let b = generate::rmat_default(14, 200_000, 7);
    let rows = b.dims()[0];
    let mut g = c.benchmark_group("coordinate_tree_partition");
    for colors in [4usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("universe", colors),
            &colors,
            |bench, &cs| {
                bench.iter(|| {
                    partition_tensor(
                        &b,
                        0,
                        universe_partition(&b, 0, &equal_coord_bounds(rows, cs)),
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("nonzero", colors),
            &colors,
            |bench, &cs| bench.iter(|| partition_tensor(&b, 1, nonzero_partition(&b, 1, cs))),
        );
    }
    g.finish();
}

fn dependent_ops(c: &mut Criterion) {
    let b = generate::rmat_default(14, 200_000, 9);
    let Level::Compressed { pos, crd } = b.level(1) else {
        unreachable!()
    };
    let row_part = Partition::equal(pos.len() as u64, 16);
    let crd_part = Partition::equal(crd.len() as u64, 16);
    let mut g = c.benchmark_group("dependent_partitioning");
    g.bench_function("image", |bench| {
        bench.iter(|| image_rects(pos, &row_part, crd.len() as u64))
    });
    g.bench_function("preimage", |bench| {
        bench.iter(|| preimage_rects(pos, &crd_part))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = partitioning, dependent_ops
}
criterion_main!(benches);
