//! Incremental recompute vs. full recompute as the dirty fraction grows —
//! the streaming subsystem's headline trade.
//!
//! One banded SpMM program (feature propagation: a sparse adjacency
//! against a dense 32-wide feature block) is compiled once, run cold,
//! and then fed value-only delta batches that dirty 1%, 10%, and 50% of
//! the rows (one overwrite per dirty row, clustered at the low rows so
//! the dirty set maps onto a contiguous prefix of the 16 colors). For
//! each fraction the bench measures the wall-clock of
//! `run_incremental()` — dirty-set lookup, color re-execution, merge
//! into the retained output — against the wall-clock of a full `run()`
//! over the same mutated tensor. Delta ingestion (`update_batch`)
//! happens outside the timed region: the comparison is recompute
//! latency after ingestion, which is the latency a serving loop sees
//! per batch.
//!
//! At 1% dirty one color of sixteen re-executes and the win is large; at
//! 10% a couple of colors run; at 50% half the colors re-execute — the
//! dirty ratio sits exactly at `FALLBACK_DIRTY_RATIO`, the last point
//! before `run_incremental` degenerates to the full path by design — and
//! the ratio shrinks toward ~1x. The persisted report
//! carries `streaming.speedup_milli_<f>pct` counters (mean full latency /
//! mean incremental latency, in thousandths) — the trajectory point CI
//! gates on.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use spdistal::prelude::*;
use spdistal_sparse::{dense_matrix, generate};

const PIECES: usize = 16;
/// Dense feature width: every stored nonzero does `2 * WIDTH` flops, so
/// the skippable kernel work dominates the plan's fixed per-pass
/// overhead (operand resolution, span bookkeeping, output seeding) and
/// the measured ratio reflects the work actually skipped.
const WIDTH: usize = 32;
/// Percent of rows dirtied per delta batch.
const FRACTIONS: [usize; 3] = [1, 10, 50];

fn rows() -> usize {
    ((200_000.0 * spdistal_bench::dataset_scale()) as usize).max(4 * PIECES)
}

fn build(trace: &Trace) -> CompiledProgram {
    let n = rows();
    let b = generate::banded(n, 80, 21);
    Program::on(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()))
        .trace(trace.clone())
        .tensor(
            "A",
            Format::blocked_dense_matrix(),
            dense_matrix(n, WIDTH, vec![0.0; n * WIDTH]),
        )
        .tensor("B", Format::blocked_csr(), b)
        .tensor(
            "C",
            Format::replicated_dense_matrix(),
            dense_matrix(n, WIDTH, generate::dense_buffer(n, WIDTH, 22)),
        )
        .stmt("A(i,j) = B(i,k) * C(k,j)")
        .schedule(ScheduleSpec::outer_dim())
        .build()
        .unwrap()
}

/// One value-only overwrite per dirty row: the banded matrix always
/// stores its diagonal, and clustering the rows at the low end maps the
/// dirty set onto a prefix of the colors. `round` varies the values so
/// consecutive batches are real mutations, never no-ops the plan could
/// have seen before.
fn batch_for(pct: usize, round: usize) -> Vec<CoordDelta> {
    let dirty = (rows() * pct / 100).max(1);
    (0..dirty as i64)
        .map(|r| CoordDelta::overwrite(vec![r, r], 1.0 + (r + round as i64) as f64 * 1e-3))
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn incremental_vs_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_exec");
    let mut program = build(&Trace::disabled());
    program.run().unwrap();
    for pct in FRACTIONS {
        let mut round = 0;
        g.bench_with_input(BenchmarkId::new("incremental", pct), &(), |b, ()| {
            b.iter(|| {
                round += 1;
                program.update_batch("B", &batch_for(pct, round)).unwrap();
                program.run_incremental().unwrap();
            })
        });
    }
    g.bench_with_input(BenchmarkId::new("full", "100"), &(), |b, ()| {
        b.iter(|| {
            program.run().unwrap();
        })
    });
    g.finish();
}

/// The headline table plus the persisted trajectory counters.
fn streaming_table(_c: &mut Criterion) {
    const RUNS: usize = 15;
    let trace = Trace::enabled();
    let mut program = build(&trace);
    program.run().unwrap();

    // Full-recompute baseline on the same compiled program.
    let full: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            program.run().unwrap();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let full_mean = mean(&full);
    trace.add("streaming.full_mean_ns", (full_mean * 1e9) as u64);

    println!(
        "\nstreaming SpMM ({WIDTH}-wide) over {} rows, {PIECES} colors: incremental vs full recompute\n\
         {:<12}{:>14}{:>14}{:>12}  mode",
        rows(),
        "dirty",
        "incr (ms)",
        "full (ms)",
        "speedup",
    );
    for pct in FRACTIONS {
        let mut spans_skipped = 0;
        let mut fallback = false;
        let incr: Vec<f64> = (0..RUNS)
            .map(|round| {
                program.update_batch("B", &batch_for(pct, round)).unwrap();
                let t0 = Instant::now();
                program.run_incremental().unwrap();
                let dt = t0.elapsed().as_secs_f64();
                let stats = program.last_incremental(0).unwrap();
                spans_skipped = stats.spans_skipped;
                fallback = stats.fallback;
                dt
            })
            .collect();
        let incr_mean = mean(&incr);
        let speedup = full_mean / incr_mean.max(1e-12);
        trace.add(
            &format!("streaming.incr_mean_ns_{pct}pct"),
            (incr_mean * 1e9) as u64,
        );
        trace.add(
            &format!("streaming.speedup_milli_{pct}pct"),
            (speedup * 1e3) as u64,
        );
        println!(
            "{:<12}{:>14.4}{:>14.4}{:>11.2}x  {}",
            format!("{pct}%"),
            incr_mean * 1e3,
            full_mean * 1e3,
            speedup,
            if fallback {
                "full (above dirty-ratio threshold)".to_string()
            } else {
                format!("incremental ({spans_skipped} spans skipped)")
            }
        );
    }
    println!(
        "run_report_json={}",
        trace.run_report_json("streaming_exec")
    );
    println!("(incremental outputs are bit-identical to full recompute; see tests/incremental_identity.rs)\n");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = incremental_vs_full, streaming_table
}
criterion_main!(benches);
