//! # spdistal-bench — the evaluation harness
//!
//! Shared machinery for the figure/table binaries (`src/bin/*`) that
//! regenerate every table and figure of the paper's evaluation
//! (Section VI), and for the Criterion micro-benchmarks.
//!
//! The harness runs each (system, kernel, dataset, processor-count)
//! configuration and reports *simulated* time from the shared machine
//! model: SpDISTAL through the compiler + Legion-like runtime, the
//! baselines through their bulk-synchronous models. "DNC" (does not
//! complete) arises from modeled memory capacity, exactly as in Figure 11.

use spdistal::prelude::*;
use spdistal_baselines::{ctf, petsc, trilinos, BaselineResult};
use spdistal_ir::Format;
use spdistal_runtime::ProcKind;
use spdistal_sparse::{dense_matrix, dense_vector, generate, SpTensor};

pub mod harness;

/// The six evaluation kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kern {
    SpMv,
    SpMm,
    SpAdd3,
    Sddmm,
    SpTtv,
    SpMttkrp,
}

impl Kern {
    pub fn name(&self) -> &'static str {
        match self {
            Kern::SpMv => "SpMV",
            Kern::SpMm => "SpMM",
            Kern::SpAdd3 => "SpAdd3",
            Kern::Sddmm => "SDDMM",
            Kern::SpTtv => "SpTTV",
            Kern::SpMttkrp => "SpMTTKRP",
        }
    }

    /// Kernels over matrices (vs 3-tensors).
    pub fn is_matrix_kernel(&self) -> bool {
        matches!(self, Kern::SpMv | Kern::SpMm | Kern::SpAdd3 | Kern::Sddmm)
    }
}

/// Dense operand width for SpMM/SDDMM/SpMTTKRP (the paper's evaluation
/// uses a fixed small rank for factor matrices).
pub const DENSE_WIDTH: usize = 32;

/// GPU memory capacity scale: datasets are ~1/3000 of the paper's, so the
/// 16 GiB V100 capacity co-scales to preserve the OOM pattern of Fig. 11.
pub const GPU_CAPACITY_SCALE: f64 = 1.0 / 3000.0;

/// Modeled CPU node memory (256 GiB, dataset-scaled) for CTF's documented
/// OOMs on small node counts (Figure 10 caption).
pub const CPU_NODE_MEM_SCALED: u64 = (256.0 * 1073741824.0 / 3000.0) as u64;

/// Dataset scale factor, overridable with `SPDISTAL_SCALE`.
pub fn dataset_scale() -> f64 {
    std::env::var("SPDISTAL_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

/// Worker-thread count for wall-clock benches: `SPD_BENCH_THREADS` when
/// set (the harness pins it per scenario for reproducibility), else the
/// machine's parallelism, but never below `min`.
pub fn bench_threads(min: usize) -> usize {
    std::env::var("SPD_BENCH_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(min)
        })
        .max(min)
}

/// Total time-constant scale relative to the paper's full-size runs: the
/// dataset registry is ~1/3000 of Table II at scale 1.0, and
/// `dataset_scale()` shrinks it further. Fixed overheads (task launch,
/// link latency) are scaled by the same factor so that overhead-to-work
/// ratios match the full-size system (see
/// [`MachineProfile::time_scaled`]).
pub fn time_scale() -> f64 {
    dataset_scale() / 3000.0
}

/// The Lassen CPU profile with overheads scaled to the dataset size.
pub fn cpu_profile() -> MachineProfile {
    MachineProfile::lassen_cpu().time_scaled(time_scale())
}

/// The Lassen GPU profile with overheads and memory capacity scaled to the
/// dataset size.
pub fn gpu_profile() -> MachineProfile {
    MachineProfile::lassen_gpu(GPU_CAPACITY_SCALE * dataset_scale()).time_scaled(time_scale())
}

/// Prepared inputs for one kernel run.
pub struct Inputs {
    pub b: SpTensor,
    pub vec: Option<Vec<f64>>,
    pub cmat: Option<Vec<f64>>,
    pub dmat: Option<Vec<f64>>,
    pub csp: Option<SpTensor>,
    pub dsp: Option<SpTensor>,
}

/// Build the operand bundle for a kernel from a dataset tensor, following
/// the paper's methodology (extra sparse operands by shifting the last
/// dimension, per Henry & Hsu et al.).
pub fn make_inputs(kern: Kern, b: &SpTensor) -> Inputs {
    let mut inputs = Inputs {
        b: b.clone(),
        vec: None,
        cmat: None,
        dmat: None,
        csp: None,
        dsp: None,
    };
    match kern {
        Kern::SpMv => inputs.vec = Some(generate::dense_vec(b.dims()[1], 7)),
        Kern::SpMm => inputs.cmat = Some(generate::dense_buffer(b.dims()[1], DENSE_WIDTH, 7)),
        Kern::SpAdd3 => {
            inputs.csp = Some(generate::shift_last_dim(b, 1));
            inputs.dsp = Some(generate::shift_last_dim(b, 2));
        }
        Kern::Sddmm => {
            inputs.cmat = Some(generate::dense_buffer(b.dims()[0], DENSE_WIDTH, 7));
            inputs.dmat = Some(generate::dense_buffer(DENSE_WIDTH, b.dims()[1], 8));
        }
        Kern::SpTtv => inputs.vec = Some(generate::dense_vec(b.dims()[2], 7)),
        Kern::SpMttkrp => {
            inputs.cmat = Some(generate::dense_buffer(b.dims()[1], DENSE_WIDTH, 7));
            inputs.dmat = Some(generate::dense_buffer(b.dims()[2], DENSE_WIDTH, 8));
        }
    }
    inputs
}

/// Run SpDISTAL on a kernel: builds the context, declares tensors with the
/// appropriate formats/distributions, compiles the schedule, executes, and
/// returns the modeled result. `nonzero` selects the non-zero-based
/// schedule + data distribution (Section II-D) over the outer-dimension one.
pub fn run_spdistal(
    kern: Kern,
    inputs: &Inputs,
    procs: usize,
    profile: &MachineProfile,
    nonzero: bool,
) -> Result<BaselineResult, String> {
    run_spdistal_traced(kern, inputs, procs, profile, nonzero, None, None)
}

/// [`run_spdistal`] with two bench-harness extras: record into `trace`
/// (kernel-dispatch events and `kernel.specialized` / `kernel.fallback`
/// counters land in its run report), and override the driver's storage
/// format with `driver_fmt` (e.g. `Format::blocked_dcsr()`; `inputs.b`
/// must already be stored in the matching level layout).
pub fn run_spdistal_traced(
    kern: Kern,
    inputs: &Inputs,
    procs: usize,
    profile: &MachineProfile,
    nonzero: bool,
    driver_fmt: Option<Format>,
    trace: Option<&Trace>,
) -> Result<BaselineResult, String> {
    let mut ctx = Context::new(Machine::grid1d(procs, profile.clone()));
    if let Some(trace) = trace {
        ctx.set_trace(trace.clone());
    }
    let b = &inputs.b;
    let unit = match profile.proc.kind {
        ProcKind::Cpu => ParallelUnit::CpuThread,
        ProcKind::Gpu => ParallelUnit::GpuThread,
    };
    let b_format = match driver_fmt {
        Some(fmt) => fmt,
        None => match (b.order(), nonzero) {
            (2, false) => Format::blocked_csr(),
            (2, true) => Format::nonzero_csr(),
            (3, false) => Format::blocked_csf3(),
            (3, true) => Format::nonzero_csf3(),
            _ => return Err("unsupported order".into()),
        },
    };
    let add = |ctx: &mut Context, name: &str, t: SpTensor, f: Format| {
        ctx.add_tensor(name, t, f).map_err(stringify_err)
    };

    add(&mut ctx, "B", b.clone(), b_format.clone())?;
    let stmt = match kern {
        Kern::SpMv => {
            let n = b.dims()[0];
            add(
                &mut ctx,
                "a",
                dense_vector(vec![0.0; n]),
                Format::blocked_dense_vec(),
            )?;
            add(
                &mut ctx,
                "c",
                dense_vector(inputs.vec.clone().unwrap()),
                Format::replicated_dense_vec(),
            )?;
            let [i, j] = ctx.fresh_vars(["i", "j"]);
            spdistal::assign(
                "a",
                &[i],
                spdistal::access("B", &[i, j]) * spdistal::access("c", &[j]),
            )
        }
        Kern::SpMm => {
            let (n, m) = (b.dims()[0], b.dims()[1]);
            add(
                &mut ctx,
                "A",
                dense_matrix(n, DENSE_WIDTH, vec![0.0; n * DENSE_WIDTH]),
                Format::blocked_dense_matrix(),
            )?;
            add(
                &mut ctx,
                "C",
                dense_matrix(m, DENSE_WIDTH, inputs.cmat.clone().unwrap()),
                Format::replicated_dense_matrix(),
            )?;
            let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
            spdistal::assign(
                "A",
                &[i, j],
                spdistal::access("B", &[i, k]) * spdistal::access("C", &[k, j]),
            )
        }
        Kern::SpAdd3 => {
            add(
                &mut ctx,
                "C",
                inputs.csp.clone().unwrap(),
                Format::blocked_csr(),
            )?;
            add(
                &mut ctx,
                "D",
                inputs.dsp.clone().unwrap(),
                Format::blocked_csr(),
            )?;
            add(
                &mut ctx,
                "A",
                spdistal::plan::empty_csr(b.dims()[0], b.dims()[1]),
                Format::blocked_csr(),
            )?;
            let [i, j] = ctx.fresh_vars(["i", "j"]);
            spdistal::assign(
                "A",
                &[i, j],
                spdistal::access("B", &[i, j])
                    + spdistal::access("C", &[i, j])
                    + spdistal::access("D", &[i, j]),
            )
        }
        Kern::Sddmm => {
            // SDDMM uses a non-zero based algorithm *and* data distribution
            // (Section VI-A): the dense factors are staged and pre-placed to
            // match the computation's partition, not replicated.
            let (n, m) = (b.dims()[0], b.dims()[1]);
            // A shares B's pattern, so it keeps B's level layout (under
            // the blocked distribution regardless of B's schedule).
            let a_fmt = Format::new(
                b_format.levels.clone(),
                spdistal_ir::Distribution::new("xy", "x").map_err(|e| format!("{e:?}"))?,
            );
            add(&mut ctx, "A", b.clone(), a_fmt)?;
            add(
                &mut ctx,
                "C",
                dense_matrix(n, DENSE_WIDTH, inputs.cmat.clone().unwrap()),
                Format::staged_dense_matrix(),
            )?;
            add(
                &mut ctx,
                "D",
                dense_matrix(DENSE_WIDTH, m, inputs.dmat.clone().unwrap()),
                Format::staged_dense_matrix(),
            )?;
            let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
            spdistal::assign(
                "A",
                &[i, j],
                spdistal::access("B", &[i, j])
                    * spdistal::access("C", &[i, k])
                    * spdistal::access("D", &[k, j]),
            )
        }
        Kern::SpTtv => {
            let fibers = spdistal::kernels::tensor3::spttv_output(
                b,
                vec![0.0; spdistal::level_funcs::entry_counts(b)[1] as usize],
            );
            add(&mut ctx, "A", fibers, Format::blocked_csr())?;
            add(
                &mut ctx,
                "c",
                dense_vector(inputs.vec.clone().unwrap()),
                Format::replicated_dense_vec(),
            )?;
            let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
            spdistal::assign(
                "A",
                &[i, j],
                spdistal::access("B", &[i, j, k]) * spdistal::access("c", &[k]),
            )
        }
        Kern::SpMttkrp => {
            let n = b.dims()[0];
            add(
                &mut ctx,
                "A",
                dense_matrix(n, DENSE_WIDTH, vec![0.0; n * DENSE_WIDTH]),
                Format::blocked_dense_matrix(),
            )?;
            add(
                &mut ctx,
                "C",
                dense_matrix(b.dims()[1], DENSE_WIDTH, inputs.cmat.clone().unwrap()),
                Format::replicated_dense_matrix(),
            )?;
            add(
                &mut ctx,
                "D",
                dense_matrix(b.dims()[2], DENSE_WIDTH, inputs.dmat.clone().unwrap()),
                Format::replicated_dense_matrix(),
            )?;
            let [i, l, j, k] = ctx.fresh_vars(["i", "l", "j", "k"]);
            spdistal::assign(
                "A",
                &[i, l],
                spdistal::access("B", &[i, j, k])
                    * spdistal::access("C", &[j, l])
                    * spdistal::access("D", &[k, l]),
            )
        }
    };

    let sched = if nonzero {
        let depth = if b.order() == 2 { 2 } else { 3 };
        spdistal::schedule_nonzero(&mut ctx, &stmt, "B", depth, procs, unit)
            .map_err(stringify_err)?
    } else {
        spdistal::schedule_outer_dim(&mut ctx, &stmt, procs, unit)
    };
    let plan = ctx.compile(&stmt, &sched).map_err(stringify_err)?;
    if nonzero {
        // Matched data + computation distribution: pre-place each color's
        // planned sub-tensors (Section II-D).
        ctx.prestage(&plan).map_err(stringify_err)?;
    }
    let result = ctx.run(&plan).map_err(stringify_err)?;
    Ok(BaselineResult {
        time: result.time,
        comm_bytes: result.comm_bytes,
        messages: result.messages,
        ops: result.ops,
    })
}

/// Memory-conserving batched SpMM with the smallest round count that fits
/// GPU memory (more rounds = smaller resident chunks, more communication).
pub fn run_spdistal_spmm_batched_auto(
    inputs: &Inputs,
    procs: usize,
    profile: &MachineProfile,
) -> Result<BaselineResult, String> {
    for rounds in [2usize, 4, 8, 16, 32] {
        match run_spdistal_spmm_batched(inputs, procs, profile, rounds) {
            Ok(r) => return Ok(r),
            Err(_) => continue,
        }
    }
    Err("OOM".into())
}

/// The memory-conserving "SpDISTAL-Batched" SpMM schedule (Figure 11):
/// partitions the dense operand's columns too and streams them between
/// processors in rounds, trading communication for peak memory.
pub fn run_spdistal_spmm_batched(
    inputs: &Inputs,
    procs: usize,
    profile: &MachineProfile,
    rounds: usize,
) -> Result<BaselineResult, String> {
    let machine = Machine::grid1d(procs, profile.clone());
    let b = &inputs.b;
    let c_bytes = (inputs.cmat.as_ref().unwrap().len() * 8) as u64;
    let out_bytes = (b.dims()[0] * DENSE_WIDTH * 8) as u64;
    // Peak per-proc memory: B block + two C chunks (double buffer) + output
    // block.
    let peak = b.bytes() / procs as u64 + 2 * c_bytes / rounds as u64 + out_bytes / procs as u64;
    if peak > profile.proc.mem_capacity {
        return Err("OOM".into());
    }
    let mut bsp = spdistal_baselines::BspModel::new(&machine);
    let per_round_ops: Vec<f64> =
        spdistal_baselines::common::row_block_ops(b, procs, 1, DENSE_WIDTH as f64 / rounds as f64);
    for _ in 0..rounds {
        bsp.exchange_phase(&vec![c_bytes / rounds as u64; procs], 2);
        bsp.compute_phase(&per_round_ops);
    }
    Ok(bsp.finish())
}

/// Run a baseline system. Returns `None` if the system does not support
/// the kernel on this processor kind, `Err("OOM")` for modeled OOMs.
pub fn run_baseline(
    system: &str,
    kern: Kern,
    inputs: &Inputs,
    machine: &Machine,
) -> Option<Result<BaselineResult, String>> {
    let b = &inputs.b;
    let kind = machine.profile().proc.kind;
    match (system, kern) {
        ("petsc", Kern::SpMv) => Some(Ok(petsc::spmv(machine, b, inputs.vec.as_ref().unwrap()).0)),
        ("petsc", Kern::SpMm) => Some(Ok(petsc::spmm(
            machine,
            b,
            inputs.cmat.as_ref().unwrap(),
            DENSE_WIDTH,
        )
        .0)),
        ("petsc", Kern::SpAdd3) if petsc::supports("spadd3", kind) => Some(Ok(petsc::spadd3(
            machine,
            b,
            inputs.csp.as_ref().unwrap(),
            inputs.dsp.as_ref().unwrap(),
        )
        .0)),
        ("trilinos", Kern::SpMv) => {
            Some(Ok(
                trilinos::spmv(machine, b, inputs.vec.as_ref().unwrap()).0
            ))
        }
        ("trilinos", Kern::SpMm) => Some(Ok(trilinos::spmm(
            machine,
            b,
            inputs.cmat.as_ref().unwrap(),
            DENSE_WIDTH,
        )
        .0)),
        ("trilinos", Kern::SpAdd3) => Some(Ok(trilinos::spadd3(
            machine,
            b,
            inputs.csp.as_ref().unwrap(),
            inputs.dsp.as_ref().unwrap(),
        )
        .0)),
        ("ctf", _) if kind == ProcKind::Gpu => None, // no usable GPU backend
        ("ctf", k) => {
            // CTF OOM model: redistribution buffers on top of operands.
            let operand_bytes = b.nnz() as u64 * 24 * if b.order() == 3 { 2 } else { 1 };
            if ctf::peak_bytes_per_proc(machine, operand_bytes * 3) > CPU_NODE_MEM_SCALED {
                return Some(Err("OOM".into()));
            }
            let r = match k {
                Kern::SpMv => ctf::spmv(machine, b, inputs.vec.as_ref().unwrap()).0,
                Kern::SpMm => ctf::spmm(machine, b, inputs.cmat.as_ref().unwrap(), DENSE_WIDTH).0,
                Kern::SpAdd3 => {
                    ctf::spadd3(
                        machine,
                        b,
                        inputs.csp.as_ref().unwrap(),
                        inputs.dsp.as_ref().unwrap(),
                    )
                    .0
                }
                Kern::Sddmm => {
                    ctf::sddmm(
                        machine,
                        b,
                        inputs.cmat.as_ref().unwrap(),
                        inputs.dmat.as_ref().unwrap(),
                        DENSE_WIDTH,
                    )
                    .0
                }
                Kern::SpTtv => ctf::spttv(machine, b, inputs.vec.as_ref().unwrap()).0,
                Kern::SpMttkrp => {
                    ctf::spmttkrp(
                        machine,
                        b,
                        inputs.cmat.as_ref().unwrap(),
                        inputs.dmat.as_ref().unwrap(),
                        DENSE_WIDTH,
                    )
                    .0
                }
            };
            Some(Ok(r))
        }
        _ => None,
    }
}

fn stringify_err(e: spdistal::Error) -> String {
    match e {
        spdistal::Error::Runtime(spdistal_runtime::RuntimeError::Oom { .. }) => "OOM".into(),
        other => format!("{other}"),
    }
}

/// Median of a slice (NaN-free input assumed).
pub fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Format seconds as milliseconds with sensible precision.
pub fn fmt_ms(t: f64) -> String {
    format!("{:.3}", t * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spdistal_sparse::dataset;

    #[test]
    fn spdistal_runs_every_kernel_on_small_data() {
        let mat = dataset::by_name("kmer_A2a").unwrap().generate(0.05);
        let t3 = dataset::by_name("nell-2").unwrap().generate(0.05);
        let prof = MachineProfile::lassen_cpu();
        for kern in [Kern::SpMv, Kern::SpMm, Kern::SpAdd3, Kern::Sddmm] {
            let inputs = make_inputs(kern, &mat);
            let nonzero = kern == Kern::Sddmm;
            let r = run_spdistal(kern, &inputs, 4, &prof, nonzero)
                .unwrap_or_else(|e| panic!("{}: {e}", kern.name()));
            assert!(r.time > 0.0, "{}", kern.name());
        }
        for kern in [Kern::SpTtv, Kern::SpMttkrp] {
            let inputs = make_inputs(kern, &t3);
            let r = run_spdistal(kern, &inputs, 4, &prof, false)
                .unwrap_or_else(|e| panic!("{}: {e}", kern.name()));
            assert!(r.time > 0.0, "{}", kern.name());
        }
    }

    #[test]
    fn gpu_oom_reported_for_oversized_replication() {
        let mat = dataset::by_name("sk-2005").unwrap().generate(0.5);
        let inputs = make_inputs(Kern::SpMm, &mat);
        // Tiny GPU memory: the replicated dense operand cannot fit.
        let prof = MachineProfile::lassen_gpu(1e-7);
        let r = run_spdistal(Kern::SpMm, &inputs, 4, &prof, true);
        assert_eq!(r.unwrap_err(), "OOM");
        // Batched variant also OOMs at this capacity, but with real
        // capacity it fits.
        let r2 = run_spdistal_spmm_batched(&inputs, 4, &prof, 4);
        assert!(r2.is_err());
        let r3 = run_spdistal_spmm_batched(&inputs, 4, &MachineProfile::lassen_gpu(1.0), 4);
        assert!(r3.is_ok());
    }

    #[test]
    fn baselines_dispatch() {
        let mat = dataset::by_name("nlpkkt240").unwrap().generate(0.05);
        let inputs = make_inputs(Kern::SpMv, &mat);
        let m = Machine::grid1d(2, MachineProfile::lassen_cpu());
        assert!(run_baseline("petsc", Kern::SpMv, &inputs, &m)
            .unwrap()
            .is_ok());
        assert!(run_baseline("trilinos", Kern::SpMv, &inputs, &m)
            .unwrap()
            .is_ok());
        assert!(run_baseline("ctf", Kern::SpMv, &inputs, &m)
            .unwrap()
            .is_ok());
        assert!(run_baseline("petsc", Kern::Sddmm, &inputs, &m).is_none());
        let gm = Machine::grid1d(2, MachineProfile::lassen_gpu(1.0));
        assert!(run_baseline("ctf", Kern::SpMv, &inputs, &gm).is_none());
    }

    #[test]
    fn median_works() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert!(median(&mut []).is_nan());
    }
}
