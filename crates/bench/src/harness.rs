//! `spd-harness` — the process-based bench orchestrator behind the
//! persisted perf trajectory (`BENCH_<scenario>.json`).
//!
//! The harness runs the *release* bench and figure binaries as child
//! processes with fixed seeds and pinned thread counts, extracts each
//! child's single-line `run_report_json=` summary, merges counters and
//! log2 latency histograms across repeats (exactly, via
//! [`HistSnapshot::merge`]), writes one schema-versioned
//! `BENCH_<scenario>.json` per scenario, and compares the fresh point
//! against the previously committed one — emitting a per-metric delta
//! table and an `ok` / `regressed` verdict that ci.sh gates on.
//!
//! Design notes (mirroring WIND's release-artifact harness):
//!
//! * **Benchmark what ships**: children are `cargo bench` / `cargo run
//!   --release` invocations, never in-process library calls, so the
//!   numbers include real binary start-up and the release codegen.
//! * **Reproducibility**: every scenario's seeds are compile-time
//!   constants in the child; the harness pins `SPDISTAL_SCALE` and
//!   `SPD_BENCH_THREADS` per scenario and records both in the report.
//! * **Machine-readable everything**: children speak one line of JSON;
//!   the harness speaks `BENCH_*.json`; the only human-oriented output is
//!   the delta table.
//!
//! See `docs/benchmarking.md` for the scenario catalogue, the report
//! schema, and how to read a regression verdict.

use std::collections::BTreeMap;
use std::process::Command;
use std::time::Instant;

use spdistal_obs::json::{escape, number, Json};
use spdistal_obs::report::hist_json;
use spdistal_obs::{HistSnapshot, HistSummary};

/// Version stamp written into (and required of) every `BENCH_*.json`.
/// Bump when the file layout changes; comparison against a different
/// schema is skipped with a note instead of misreading fields.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Default regression tolerance: a metric regresses when its merged mean
/// exceeds the baseline's by more than this ratio. Generous enough for CI
/// noise on wall-clock metrics (modeled-time metrics are deterministic and
/// sit at ratio 1.0), tight enough that a genuine 2x latency regression
/// fails.
pub const DEFAULT_TOLERANCE: f64 = 1.8;

/// The marker line children print: `run_report_json=<one-line JSON>`.
pub const REPORT_MARKER: &str = "run_report_json=";

/// `SPD_BENCH_TOLERANCE` when set and parseable, else
/// [`DEFAULT_TOLERANCE`]. Values `<= 0` disable gating entirely.
pub fn tolerance_from_env() -> f64 {
    std::env::var("SPD_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_TOLERANCE)
}

/// One benchmark scenario: a child-process invocation expected to print a
/// `run_report_json=` line, plus the reproducibility metadata recorded in
/// its `BENCH_<name>.json`.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Trajectory file stem: `BENCH_<name>.json`.
    pub name: &'static str,
    /// argv, `command[0]` being the program.
    pub command: Vec<String>,
    /// Environment pinned onto the child.
    pub env: Vec<(String, String)>,
    /// Suites this scenario belongs to (`"ci"`, `"full"`).
    pub suites: &'static [&'static str],
    /// Worker threads the scenario pins (0 = scenario is serial/modeled).
    pub threads: usize,
    /// `SPDISTAL_SCALE` the scenario pins.
    pub scale: f64,
}

fn cargo_bench(name: &'static str) -> Vec<String> {
    ["cargo", "bench", "-p", "spdistal-bench", "--bench", name]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn cargo_bin(name: &'static str) -> Vec<String> {
    [
        "cargo",
        "run",
        "--release",
        "-q",
        "-p",
        "spdistal-bench",
        "--bin",
        name,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

/// The scenario catalogue: the whole harness-drivable evaluation surface.
/// The `ci` suite is the small-scale subset ci.sh runs and gates on; the
/// `full` suite adds the remaining figure/table binaries at their default
/// scale.
pub fn all_scenarios() -> Vec<Scenario> {
    const CI_SCALE: f64 = 0.05;
    const CI_THREADS: usize = 2;
    let pin = |scale: f64, threads: usize| {
        let mut env = vec![("SPDISTAL_SCALE".to_string(), format!("{scale}"))];
        if threads > 0 {
            env.push(("SPD_BENCH_THREADS".to_string(), format!("{threads}")));
        }
        env
    };
    vec![
        Scenario {
            name: "program_overhead",
            command: cargo_bench("program_overhead"),
            env: pin(CI_SCALE, CI_THREADS),
            suites: &["ci", "full"],
            threads: CI_THREADS,
            scale: CI_SCALE,
        },
        Scenario {
            name: "skewed_exec",
            command: cargo_bench("skewed_exec"),
            env: pin(CI_SCALE, CI_THREADS),
            suites: &["ci", "full"],
            threads: CI_THREADS,
            scale: CI_SCALE,
        },
        Scenario {
            name: "streaming_exec",
            command: cargo_bench("streaming_exec"),
            env: pin(CI_SCALE, 0),
            suites: &["ci", "full"],
            threads: 0,
            scale: CI_SCALE,
        },
        Scenario {
            name: "model_pipeline",
            command: cargo_bench("model_pipeline"),
            env: pin(CI_SCALE, CI_THREADS),
            suites: &["ci", "full"],
            threads: CI_THREADS,
            scale: CI_SCALE,
        },
        Scenario {
            name: "kernels",
            command: cargo_bench("kernels"),
            env: pin(CI_SCALE, 0),
            suites: &["ci", "full"],
            threads: 0,
            scale: CI_SCALE,
        },
        Scenario {
            name: "fig10_cpu_strong_scaling",
            command: cargo_bin("fig10_cpu_strong_scaling"),
            env: pin(CI_SCALE, 0),
            suites: &["ci", "full"],
            threads: 0,
            scale: CI_SCALE,
        },
        Scenario {
            name: "ablations",
            command: cargo_bin("ablations"),
            env: pin(CI_SCALE, 0),
            suites: &["ci", "full"],
            threads: 0,
            scale: CI_SCALE,
        },
        Scenario {
            name: "fig13_weak_scaling",
            command: cargo_bin("fig13_weak_scaling"),
            env: pin(CI_SCALE, 0),
            suites: &["full"],
            threads: 0,
            scale: CI_SCALE,
        },
        Scenario {
            name: "fig11_gpu_heatmap",
            command: cargo_bin("fig11_gpu_heatmap"),
            env: pin(CI_SCALE, 0),
            suites: &["full"],
            threads: 0,
            scale: CI_SCALE,
        },
        Scenario {
            name: "fig12_gpu_vs_cpu",
            command: cargo_bin("fig12_gpu_vs_cpu"),
            env: pin(CI_SCALE, 0),
            suites: &["full"],
            threads: 0,
            scale: CI_SCALE,
        },
        Scenario {
            name: "table2_datasets",
            command: cargo_bin("table2_datasets"),
            env: pin(CI_SCALE, 0),
            suites: &["full"],
            threads: 0,
            scale: CI_SCALE,
        },
    ]
}

/// The scenarios belonging to `suite` (empty when the suite is unknown).
pub fn suite(name: &str) -> Vec<Scenario> {
    all_scenarios()
        .into_iter()
        .filter(|s| s.suites.contains(&name))
        .collect()
}

/// One completed child run: the parsed report plus its wall time.
#[derive(Clone, Debug)]
pub struct ChildRun {
    pub report: Json,
    pub wall_seconds: f64,
}

/// Find and parse the child's `run_report_json=` line. The *last* marker
/// line wins (a child may run several phases); missing or malformed lines
/// are errors naming the scenario's contract.
pub fn extract_report(stdout: &str) -> Result<Json, String> {
    let line = stdout
        .lines()
        .rev()
        .find_map(|l| l.trim().strip_prefix(REPORT_MARKER))
        .ok_or_else(|| {
            format!(
                "no '{REPORT_MARKER}' line in child stdout ({} lines)",
                stdout.lines().count()
            )
        })?;
    Json::parse(line).map_err(|e| format!("malformed {REPORT_MARKER} payload: {e}"))
}

/// Run one scenario child to completion: nonzero exit, spawn failure, and
/// a missing/malformed report line are all errors (with enough child
/// output attached to diagnose).
pub fn run_child(command: &[String], env: &[(String, String)]) -> Result<ChildRun, String> {
    let (prog, args) = command
        .split_first()
        .ok_or_else(|| "empty scenario command".to_string())?;
    let t0 = Instant::now();
    let out = Command::new(prog)
        .args(args)
        .envs(env.iter().map(|(k, v)| (k.as_str(), v.as_str())))
        .output()
        .map_err(|e| format!("failed to spawn {prog}: {e}"))?;
    let wall_seconds = t0.elapsed().as_secs_f64();
    let stdout = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        let stderr = String::from_utf8_lossy(&out.stderr);
        return Err(format!(
            "child exited with {}: {}\n--- stderr tail ---\n{}",
            out.status,
            command.join(" "),
            tail(&stderr, 12),
        ));
    }
    let report = extract_report(&stdout)
        .map_err(|e| format!("{e}\n--- stdout tail ---\n{}", tail(&stdout, 12)))?;
    Ok(ChildRun {
        report,
        wall_seconds,
    })
}

fn tail(s: &str, n: usize) -> String {
    let lines: Vec<&str> = s.lines().collect();
    let k = lines.len().saturating_sub(n);
    lines[k..].join("\n")
}

/// The merged trajectory point for one scenario: counters averaged per
/// repeat, histograms merged exactly from each repeat's raw snapshot.
#[derive(Clone, Debug)]
pub struct MergedRun {
    pub scenario: String,
    pub threads: usize,
    pub scale: f64,
    pub repeats: usize,
    /// Total child wall-clock across repeats (orchestration view, not a
    /// gated metric).
    pub wall_seconds: f64,
    /// Per-repeat mean of every counter.
    pub counters: BTreeMap<String, f64>,
    /// Exact cross-repeat merge of every histogram, original (ns) units.
    pub hists: BTreeMap<String, HistSnapshot>,
}

/// Merge the repeats of one scenario. Counters average; `hist_raw`
/// snapshots merge bucket-by-bucket. Reports without counters or
/// histograms (e.g. a disabled trace) contribute nothing but still count
/// as a repeat. Malformed `hist_raw` entries are errors — a silent skip
/// would under-report the tail.
pub fn merge_runs(scenario: &Scenario, runs: &[ChildRun]) -> Result<MergedRun, String> {
    if runs.is_empty() {
        return Err(format!(
            "scenario {}: no completed repeats to merge",
            scenario.name
        ));
    }
    let mut counters: BTreeMap<String, f64> = BTreeMap::new();
    let mut hists: BTreeMap<String, HistSnapshot> = BTreeMap::new();
    let mut wall_seconds = 0.0;
    for run in runs {
        wall_seconds += run.wall_seconds;
        if let Some(Json::Obj(m)) = run.report.get("counters") {
            for (k, v) in m {
                let v = v.as_f64().ok_or_else(|| {
                    format!("scenario {}: counter {k} is not a number", scenario.name)
                })?;
                *counters.entry(k.clone()).or_insert(0.0) += v;
            }
        }
        if let Some(Json::Obj(m)) = run.report.get("hist_raw") {
            for (k, v) in m {
                let snap = HistSnapshot::from_json(v)
                    .map_err(|e| format!("scenario {}: hist_raw {k}: {e}", scenario.name))?;
                hists.entry(k.clone()).or_default().merge(&snap);
            }
        }
    }
    for v in counters.values_mut() {
        *v /= runs.len() as f64;
    }
    Ok(MergedRun {
        scenario: scenario.name.to_string(),
        threads: scenario.threads,
        scale: scenario.scale,
        repeats: runs.len(),
        wall_seconds,
        counters,
        hists,
    })
}

impl MergedRun {
    /// The summarized (human/gating) view of the merged histograms:
    /// `*_ns` histograms become `*_us` summaries in microseconds, exactly
    /// as `Trace::run_report_json` reports them.
    pub fn hist_summaries(&self) -> BTreeMap<String, HistSummary> {
        self.hists
            .iter()
            .map(|(k, snap)| {
                let s = snap.summarize();
                match k.strip_suffix("_ns") {
                    Some(base) => (format!("{base}_us"), s.scaled(1e-3)),
                    None => (k.clone(), s),
                }
            })
            .collect()
    }

    /// Render the schema-versioned `BENCH_<scenario>.json` document.
    pub fn bench_file_json(&self, suite: &str) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape(k), number(*v)))
            .collect::<Vec<_>>()
            .join(",");
        let hist = self
            .hist_summaries()
            .iter()
            .map(|(k, s)| format!("\"{}\":{}", escape(k), hist_json(s)))
            .collect::<Vec<_>>()
            .join(",");
        let raw = self
            .hists
            .iter()
            .map(|(k, snap)| format!("\"{}\":{}", escape(k), snap.to_json()))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":{BENCH_SCHEMA_VERSION},\"scenario\":\"{}\",\"suite\":\"{}\",\
             \"threads\":{},\"scale\":{},\"repeats\":{},\"wall_seconds\":{},\
             \"counters\":{{{counters}}},\"hist\":{{{hist}}},\"hist_raw\":{{{raw}}}}}",
            escape(&self.scenario),
            escape(suite),
            self.threads,
            number(self.scale),
            self.repeats,
            number(self.wall_seconds),
        )
    }
}

/// The regression verdict for one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    Ok,
    Regressed,
}

/// One line of the delta table.
#[derive(Clone, Debug)]
pub struct DeltaRow {
    pub metric: String,
    pub old: f64,
    pub new: f64,
    /// `new / old`; 0 when not computable.
    pub ratio: f64,
    /// `"ok"`, `"improved"`, `"REGRESSED"`, `"skipped"`, or `"info"`.
    pub status: &'static str,
    pub note: String,
}

/// The baseline comparison for one scenario: per-metric rows, free-form
/// notes, and the verdict ci.sh gates on.
#[derive(Clone, Debug)]
pub struct Comparison {
    pub rows: Vec<DeltaRow>,
    pub notes: Vec<String>,
    pub verdict: Verdict,
}

/// Compare a fresh merged point against the committed baseline document.
///
/// Gated metrics are the *means* of latency histograms — exact under
/// merging and, unlike the log2-bucketed percentiles, not quantized to
/// powers of two (a one-bucket noise shift would otherwise read as a 2x
/// "regression"). Counters are reported as `info` rows, never gated
/// (more steals is not a regression). Edge cases resolve to `ok`:
/// no baseline, a different schema, or mismatched scale/threads skip
/// gating with a note; zero-count or zero-mean metrics are `skipped`
/// (never a divide-by-zero); `tolerance <= 0` disables gating.
pub fn compare(baseline: Option<&Json>, fresh: &MergedRun, tolerance: f64) -> Comparison {
    let mut cmp = Comparison {
        rows: Vec::new(),
        notes: Vec::new(),
        verdict: Verdict::Ok,
    };
    let Some(base) = baseline else {
        cmp.notes
            .push("no baseline — recording first trajectory point, verdict ok".to_string());
        return cmp;
    };
    let schema = base.get("schema").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    if schema != BENCH_SCHEMA_VERSION {
        cmp.notes.push(format!(
            "baseline schema {schema} != {BENCH_SCHEMA_VERSION} — comparison skipped, verdict ok"
        ));
        return cmp;
    }
    let gating = tolerance > 0.0;
    if !gating {
        cmp.notes
            .push("tolerance <= 0 — gating disabled, delta table is informational".to_string());
    }
    for (what, val) in [("scale", fresh.scale), ("threads", fresh.threads as f64)] {
        let old = base.get(what).and_then(Json::as_f64);
        if old != Some(val) {
            cmp.notes.push(format!(
                "baseline {what} {:?} != fresh {val} — configs differ, gating skipped, verdict ok",
                old
            ));
            return cmp;
        }
    }

    // Latency histograms: gate on merged means.
    let empty = Json::Obj(Default::default());
    let base_hist = base.get("hist").unwrap_or(&empty);
    for (name, s) in fresh.hist_summaries() {
        let Some(old) = base_hist.get(&name) else {
            cmp.rows.push(DeltaRow {
                metric: name,
                old: 0.0,
                new: s.mean,
                ratio: 0.0,
                status: "skipped",
                note: "metric absent from baseline".to_string(),
            });
            continue;
        };
        let old = match HistSummary::from_json(old) {
            Ok(old) => old,
            Err(e) => {
                cmp.rows.push(DeltaRow {
                    metric: name,
                    old: 0.0,
                    new: s.mean,
                    ratio: 0.0,
                    status: "skipped",
                    note: format!("unreadable baseline entry: {e}"),
                });
                continue;
            }
        };
        if old.count == 0 || s.count == 0 || old.mean <= 0.0 {
            cmp.rows.push(DeltaRow {
                metric: name,
                old: old.mean,
                new: s.mean,
                ratio: 0.0,
                status: "skipped",
                note: "zero-count or zero-mean metric".to_string(),
            });
            continue;
        }
        let ratio = s.mean / old.mean;
        let status = if !gating {
            "info"
        } else if ratio > tolerance {
            cmp.verdict = Verdict::Regressed;
            "REGRESSED"
        } else if ratio < 1.0 / tolerance {
            "improved"
        } else {
            "ok"
        };
        cmp.rows.push(DeltaRow {
            metric: name,
            old: old.mean,
            new: s.mean,
            ratio,
            status,
            note: format!("mean (p99 {} -> {})", number(old.p99), number(s.p99)),
        });
    }

    // Counters: informational only.
    let base_counters = base.get("counters").unwrap_or(&empty);
    for (name, &new) in &fresh.counters {
        let old = base_counters
            .get(name)
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let ratio = if old != 0.0 { new / old } else { 0.0 };
        cmp.rows.push(DeltaRow {
            metric: format!("counter:{name}"),
            old,
            new,
            ratio,
            status: "info",
            note: String::new(),
        });
    }
    cmp
}

/// Render the per-metric delta table for one scenario.
pub fn render_delta_table(scenario: &str, cmp: &Comparison) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for note in &cmp.notes {
        let _ = writeln!(out, "  note: {note}");
    }
    if !cmp.rows.is_empty() {
        let _ = writeln!(
            out,
            "  {:<32} {:>14} {:>14} {:>8}  status",
            "metric", "baseline", "fresh", "ratio"
        );
        for row in &cmp.rows {
            let ratio = if row.ratio > 0.0 {
                format!("{:.3}", row.ratio)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "  {:<32} {:>14} {:>14} {:>8}  {}{}",
                row.metric,
                trim_num(row.old),
                trim_num(row.new),
                ratio,
                row.status,
                if row.note.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", row.note)
                },
            );
        }
    }
    let _ = writeln!(
        out,
        "  verdict[{scenario}]: {}",
        match cmp.verdict {
            Verdict::Ok => "ok",
            Verdict::Regressed => "REGRESSED",
        }
    );
    out
}

fn trim_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}
