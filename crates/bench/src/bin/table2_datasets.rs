//! Table II: the evaluation datasets.
//!
//! Prints the paper's dataset inventory next to the synthetic stand-ins
//! actually generated (name, domain, paper non-zeros, synthetic non-zeros,
//! dimensions, structure class). Run with `SPDISTAL_SCALE=<f>` to change
//! the synthetic scale.

use std::time::Instant;

use spdistal::prelude::Trace;
use spdistal_bench::dataset_scale;
use spdistal_sparse::dataset;

fn main() {
    let scale = dataset_scale();
    let trace = Trace::enabled();
    println!("Table II: tensors and matrices considered in the experiments");
    println!("(synthetic stand-ins at scale {scale}; see DESIGN.md for the substitution)\n");
    println!(
        "{:<18} {:<18} {:>12} {:>12} {:>22} {:<14}",
        "Tensor name", "Domain", "Paper nnz", "Synth nnz", "Synth dims", "Structure"
    );
    println!("{}", "-".repeat(100));
    let mut total_nnz = 0u64;
    for spec in dataset::all() {
        let t0 = Instant::now();
        let t = spec.generate(scale);
        // Generator wall time per dataset: the one real cost this binary
        // pays, and the trajectory metric for the synthetic registry.
        trace.observe_ns("generate_ns", t0.elapsed().as_nanos() as u64);
        trace.add("datasets", 1);
        total_nnz += t.nnz() as u64;
        let dims = format!("{:?}", t.dims());
        println!(
            "{:<18} {:<18} {:>12.2e} {:>12} {:>22} {:<14}",
            spec.name,
            spec.domain,
            spec.paper_nnz,
            t.nnz(),
            dims,
            format!("{:?}", spec.class),
        );
    }
    trace.add("total_nnz", total_nnz);
    println!(
        "run_report_json={}",
        trace.run_report_json("table2_datasets")
    );
}
