//! Table II: the evaluation datasets.
//!
//! Prints the paper's dataset inventory next to the synthetic stand-ins
//! actually generated (name, domain, paper non-zeros, synthetic non-zeros,
//! dimensions, structure class). Run with `SPDISTAL_SCALE=<f>` to change
//! the synthetic scale.

use spdistal_bench::dataset_scale;
use spdistal_sparse::dataset;

fn main() {
    let scale = dataset_scale();
    println!("Table II: tensors and matrices considered in the experiments");
    println!("(synthetic stand-ins at scale {scale}; see DESIGN.md for the substitution)\n");
    println!(
        "{:<18} {:<18} {:>12} {:>12} {:>22} {:<14}",
        "Tensor name", "Domain", "Paper nnz", "Synth nnz", "Synth dims", "Structure"
    );
    println!("{}", "-".repeat(100));
    for spec in dataset::all() {
        let t = spec.generate(scale);
        let dims = format!("{:?}", t.dims());
        println!(
            "{:<18} {:<18} {:>12.2e} {:>12} {:>22} {:<14}",
            spec.name,
            spec.domain,
            spec.paper_nnz,
            t.nnz(),
            dims,
            format!("{:?}", spec.class),
        );
    }
}
