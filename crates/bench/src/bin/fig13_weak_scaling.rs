//! Figure 13: SpMV weak scaling on synthetic banded matrices, 1-64 nodes
//! (4-256 GPUs), versus PETSc.
//!
//! Plots throughput per node (iterations/second) at a fixed per-node
//! problem size; flat lines are perfect weak scaling. The paper finds
//! PETSc perfectly flat, SpDISTAL-CPU at 90-92% of PETSc, and
//! SpDISTAL-GPU 1.05-1.29x over PETSc-GPU (credited to Legion's
//! asynchronous execution avoiding the bulk-synchronous sync per
//! iteration).

use spdistal::prelude::Trace;
use spdistal_bench::{
    cpu_profile, make_inputs, run_baseline, run_spdistal, time_scale, Kern, GPU_CAPACITY_SCALE,
};
use spdistal_runtime::{Machine, MachineProfile};
use spdistal_sparse::generate;

/// Non-zeros per CPU node / per GPU (paper: 7e8 per node; scaled ~1/3000).
/// The GPU band is kept wide so the replicated dense vector stays small
/// relative to the matrix blocks within the scaled V100 capacity, matching
/// the paper's matrix-dominated working set.
const NNZ_PER_CPU_NODE: usize = 240_000;
const CPU_BAND: usize = 9;
const NNZ_PER_GPU: usize = 200_000;
const GPU_BAND: usize = 199;

const NODES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn main() {
    println!("Figure 13: SpMV weak scaling on synthetic banded matrices");
    println!("throughput per node (iterations/second); flat = perfect weak scaling\n");
    println!(
        "{:<16}{:>14}{:>14}{:>16}{:>16}",
        "nodes (GPUs)", "SpDISTAL", "PETSc", "SpDISTAL-GPU", "PETSc-GPU"
    );

    let cpu = cpu_profile();
    // Fig. 13 sizes its own problems (not Table II), so give the scaled
    // V100 a matching capacity headroom.
    let gpu = MachineProfile::lassen_gpu(2.0 * GPU_CAPACITY_SCALE).time_scaled(time_scale());
    let trace = Trace::enabled();

    for &nodes in &NODES {
        // CPU problem: fixed nnz per node.
        let n_cpu = nodes * NNZ_PER_CPU_NODE / CPU_BAND;
        let b_cpu = generate::banded(n_cpu, CPU_BAND, 13);
        let inputs_cpu = make_inputs(Kern::SpMv, &b_cpu);
        let t_spd = run_spdistal(Kern::SpMv, &inputs_cpu, nodes, &cpu, false)
            .expect("cpu weak scaling")
            .time;
        let t_petsc = run_baseline(
            "petsc",
            Kern::SpMv,
            &inputs_cpu,
            &Machine::grid1d(nodes, cpu.clone()),
        )
        .unwrap()
        .unwrap()
        .time;

        // GPU problem: fixed nnz per GPU, 4 GPUs per node.
        let gpus = 4 * nodes;
        let n_gpu = gpus * NNZ_PER_GPU / GPU_BAND;
        let b_gpu = generate::banded(n_gpu, GPU_BAND, 14);
        let inputs_gpu = make_inputs(Kern::SpMv, &b_gpu);
        let t_spd_gpu = run_spdistal(Kern::SpMv, &inputs_gpu, gpus, &gpu, false)
            .map(|r| r.time)
            .ok();
        let t_petsc_gpu = run_baseline(
            "petsc",
            Kern::SpMv,
            &inputs_gpu,
            &Machine::grid1d(gpus, gpu.clone()),
        )
        .unwrap()
        .map(|r| r.time)
        .ok();

        trace.observe_ns("spdistal_cpu_model_ns", (t_spd * 1e9) as u64);
        if let Some(t) = t_spd_gpu {
            trace.observe_ns("spdistal_gpu_model_ns", (t * 1e9) as u64);
        } else {
            trace.add("gpu_dnc", 1);
        }
        trace.add("rows", 1);
        let tput = |t: f64| 1.0 / t;
        println!(
            "{:<16}{:>14.1}{:>14.1}{:>16}{:>16}",
            format!("{nodes} ({gpus})"),
            tput(t_spd),
            tput(t_petsc),
            t_spd_gpu.map_or("DNC".to_string(), |t| format!("{:.1}", tput(t))),
            t_petsc_gpu.map_or("DNC".to_string(), |t| format!("{:.1}", tput(t))),
        );
    }
    println!("\n(Each row uses a freshly generated banded matrix with the per-node/per-GPU size held fixed.)");
    println!(
        "run_report_json={}",
        trace.run_report_json("fig13_weak_scaling")
    );
}
