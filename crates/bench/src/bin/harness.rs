//! `spd-harness` — orchestrates the evaluation binaries as child
//! processes, merges their run reports across repeats, persists the
//! schema-versioned `BENCH_<scenario>.json` trajectory files, and gates
//! on regressions against the committed previous point.
//!
//! ```text
//! spd-harness run --suite ci                 # the ci.sh invocation
//! spd-harness run --scenario skewed_exec --repeats 3
//! spd-harness run --suite ci --baseline BENCH_skewed_exec.json
//! spd-harness list
//! ```
//!
//! Exit status: 0 when every scenario's verdict is `ok`, 1 on any
//! regression or orchestration failure. Tolerance comes from
//! `SPD_BENCH_TOLERANCE` (ratio of merged means; `<= 0` disables gating).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use spdistal_bench::harness::{
    compare, merge_runs, render_delta_table, run_child, suite, tolerance_from_env, ChildRun,
    Scenario, Verdict,
};
use spdistal_obs::json::Json;

struct Opts {
    suite: String,
    repeats: usize,
    scenarios: Vec<String>,
    baseline: Option<PathBuf>,
    out_dir: PathBuf,
}

fn usage() -> String {
    "usage: spd-harness <run|list> [--suite ci|full] [--repeats N] \
     [--scenario NAME]... [--baseline FILE] [--out-dir DIR]"
        .to_string()
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        suite: "ci".to_string(),
        repeats: 2,
        scenarios: Vec::new(),
        baseline: None,
        out_dir: PathBuf::from("."),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value\n{}", usage()))
        };
        match arg.as_str() {
            "--suite" => opts.suite = val("--suite")?,
            "--repeats" => {
                opts.repeats = val("--repeats")?
                    .parse()
                    .map_err(|e| format!("--repeats: {e}"))?;
                if opts.repeats == 0 {
                    return Err("--repeats must be >= 1".to_string());
                }
            }
            "--scenario" => opts.scenarios.push(val("--scenario")?),
            "--baseline" => opts.baseline = Some(PathBuf::from(val("--baseline")?)),
            "--out-dir" => opts.out_dir = PathBuf::from(val("--out-dir")?),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(opts)
}

fn selected_scenarios(opts: &Opts) -> Result<Vec<Scenario>, String> {
    if opts.scenarios.is_empty() {
        let list = suite(&opts.suite);
        if list.is_empty() {
            return Err(format!("unknown suite '{}' (try ci or full)", opts.suite));
        }
        return Ok(list);
    }
    let all = suite("full");
    opts.scenarios
        .iter()
        .map(|name| {
            all.iter()
                .find(|s| s.name == *name)
                .cloned()
                .ok_or_else(|| format!("unknown scenario '{name}' (spd-harness list)"))
        })
        .collect()
}

/// The committed previous point for a scenario: an explicit `--baseline`
/// file (any scenario) or `<out-dir>/BENCH_<name>.json`. `None` when the
/// file does not exist; unparseable files are an error (silently treating
/// a corrupt baseline as "first run" would un-gate CI).
fn load_baseline(opts: &Opts, scenario: &str) -> Result<Option<Json>, String> {
    let path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.out_dir.join(format!("BENCH_{scenario}.json")));
    if !path.exists() {
        return Ok(None);
    }
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("reading baseline {}: {e}", path.display()))?;
    Json::parse(&src)
        .map(Some)
        .map_err(|e| format!("parsing baseline {}: {e}", path.display()))
}

fn cmd_list() -> ExitCode {
    println!(
        "{:<28} {:<10} {:>7} {:>6}  command",
        "scenario", "suites", "threads", "scale"
    );
    for s in suite("full") {
        println!(
            "{:<28} {:<10} {:>7} {:>6}  {}",
            s.name,
            s.suites.join(","),
            s.threads,
            s.scale,
            s.command.join(" "),
        );
    }
    ExitCode::SUCCESS
}

fn cmd_run(opts: &Opts) -> Result<Verdict, String> {
    let scenarios = selected_scenarios(opts)?;
    let tolerance = tolerance_from_env();
    println!(
        "spd-harness: suite={} scenarios={} repeats={} tolerance={}",
        opts.suite,
        scenarios.len(),
        opts.repeats,
        tolerance,
    );
    let mut verdict = Verdict::Ok;
    for scenario in &scenarios {
        println!("==> {} ({} repeats)", scenario.name, opts.repeats);
        // Load the baseline before overwriting its file with the fresh point.
        let baseline = load_baseline(opts, scenario.name)?;
        let mut runs: Vec<ChildRun> = Vec::with_capacity(opts.repeats);
        for rep in 0..opts.repeats {
            let run = run_child(&scenario.command, &scenario.env)
                .map_err(|e| format!("scenario {} repeat {rep}: {e}", scenario.name))?;
            println!("    repeat {rep}: {:.2}s", run.wall_seconds);
            runs.push(run);
        }
        let merged = merge_runs(scenario, &runs)?;
        let out = opts.out_dir.join(format!("BENCH_{}.json", scenario.name));
        write_atomic(&out, &merged.bench_file_json(&opts.suite))?;
        println!("    wrote {}", out.display());
        let cmp = compare(baseline.as_ref(), &merged, tolerance);
        print!("{}", render_delta_table(scenario.name, &cmp));
        if cmp.verdict == Verdict::Regressed {
            verdict = Verdict::Regressed;
        }
    }
    println!(
        "spd-harness: overall verdict: {}",
        match verdict {
            Verdict::Ok => "ok",
            Verdict::Regressed => "REGRESSED",
        }
    );
    Ok(verdict)
}

/// Write via a temp file + rename so an interrupted run never leaves a
/// truncated trajectory file behind.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("renaming to {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => {
            let opts = match parse_opts(rest) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("spd-harness: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd_run(&opts) {
                Ok(Verdict::Ok) => ExitCode::SUCCESS,
                Ok(Verdict::Regressed) => {
                    eprintln!("spd-harness: regression detected (see delta tables above)");
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("spd-harness: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        other => {
            eprintln!("spd-harness: unknown command {other}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}
