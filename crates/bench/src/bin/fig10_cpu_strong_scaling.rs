//! Figure 10: CPU strong scaling for the six kernels, 1-16 nodes.
//!
//! For each kernel, prints the median speedup (over all datasets) of every
//! system, normalized to SpDISTAL on one node — the quantity Figure 10
//! plots. The paper's headline shapes to look for:
//!
//! * SpMV/SpMM: SpDISTAL, PETSc and Trilinos cluster near ideal; CTF sits
//!   orders of magnitude below (2^-5..2^-7 on SpMV).
//! * SpAdd3: SpDISTAL's fused kernel opens a >10x gap over the pairwise
//!   baselines.
//! * SDDMM: SpDISTAL's non-zero schedule scales near-ideally; CTF's
//!   special kernel trails (15.3x median in the paper).
//! * SpMTTKRP: CTF's special kernel is competitive (paper: SpDISTAL at a
//!   median 97% of CTF).

use spdistal::prelude::Trace;
use spdistal_bench::{
    cpu_profile, dataset_scale, make_inputs, median, run_baseline, run_spdistal, Kern,
};
use spdistal_runtime::Machine;
use spdistal_sparse::dataset;

const NODES: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let scale = dataset_scale();
    let profile = cpu_profile();
    let trace = Trace::enabled();
    println!("Figure 10: CPU strong scaling (speedup over SpDISTAL @ 1 node)");
    println!("dataset scale = {scale}\n");

    let kernels: [(Kern, bool, &[&str]); 6] = [
        (Kern::SpMv, false, &["petsc", "trilinos", "ctf"]),
        (Kern::SpMm, false, &["petsc", "trilinos", "ctf"]),
        (Kern::SpAdd3, false, &["petsc", "trilinos", "ctf"]),
        (Kern::Sddmm, true, &["ctf"]),
        (Kern::SpTtv, false, &["ctf"]),
        (Kern::SpMttkrp, false, &["ctf"]),
    ];

    for (kern, nonzero, systems) in kernels {
        let specs = if kern.is_matrix_kernel() {
            dataset::matrices()
        } else {
            dataset::tensors3()
        };
        let data: Vec<_> = specs
            .iter()
            .map(|s| (s.name, make_inputs(kern, &s.generate(scale))))
            .collect();

        // SpDISTAL single-node baselines per dataset.
        let base: Vec<f64> = data
            .iter()
            .map(|(name, inputs)| {
                run_spdistal(kern, inputs, 1, &profile, nonzero)
                    .unwrap_or_else(|e| panic!("{} {name} @1: {e}", kern.name()))
                    .time
            })
            .collect();

        println!(
            "--- Figure 10{}: {} ({} schedule) ---",
            (b'a' + kernels.iter().position(|(k, _, _)| *k == kern).unwrap() as u8) as char,
            kern.name(),
            if nonzero { "non-zero" } else { "row/slice" }
        );
        print!("{:<8}{:>12}", "nodes", "SpDISTAL");
        for s in systems {
            print!("{:>12}", s);
        }
        println!("{:>8}", "(ideal)");

        for &nodes in &NODES {
            let mut spd: Vec<f64> = Vec::new();
            let mut sys_speedups: Vec<Vec<f64>> = vec![Vec::new(); systems.len()];
            let mut oom_counts = vec![0usize; systems.len()];
            for (ds_idx, (_, inputs)) in data.iter().enumerate() {
                let t = run_spdistal(kern, inputs, nodes, &profile, nonzero)
                    .expect("spdistal CPU run")
                    .time;
                // Modeled per-(kernel, dataset, nodes) latency into the
                // report: deterministic, so the harness can gate on it.
                trace.observe_ns("spdistal_model_ns", (t * 1e9) as u64);
                trace.add("spdistal_runs", 1);
                spd.push(base[ds_idx] / t);
                let machine = Machine::grid1d(nodes, profile.clone());
                for (si, s) in systems.iter().enumerate() {
                    match run_baseline(s, kern, inputs, &machine) {
                        Some(Ok(r)) => sys_speedups[si].push(base[ds_idx] / r.time),
                        Some(Err(_)) => oom_counts[si] += 1,
                        None => {}
                    }
                }
            }
            print!("{:<8}{:>12.3}", nodes, median(&mut spd));
            for (si, _) in systems.iter().enumerate() {
                let m = median(&mut sys_speedups[si]);
                if m.is_nan() {
                    print!("{:>12}", "-");
                } else if oom_counts[si] > 0 {
                    print!("{:>9.3}+{}O", m, oom_counts[si]);
                } else {
                    print!("{:>12.3}", m);
                }
            }
            println!("{:>8}", nodes);
        }
        println!();
    }
    println!(
        "run_report_json={}",
        trace.run_report_json("fig10_cpu_strong_scaling")
    );
}
