//! Figure 11: GPU strong scaling heatmaps for SpMV, SpMM, SpAdd3, SDDMM.
//!
//! For every (dataset, GPU count) cell, prints each system's time in
//! milliseconds (or DNC on modeled OOM) and marks the fastest — the same
//! information the paper's heatmaps encode. Shapes to look for:
//!
//! * SpMV: SpDISTAL wins most cells (paper: 28/38), medians 1.07x/1.65x
//!   over PETSc/Trilinos.
//! * SpMM: the load-balanced SpDISTAL schedule wins when data fits;
//!   SpDISTAL-Batched rescues configurations where the replicated dense
//!   operand OOMs; Trilinos completes some cells via UVM paging.
//! * SpAdd3: SpDISTAL wins nearly everywhere (paper: 32/34) by fusing.
//! * SDDMM: SpDISTAL-GPU vs SpDISTAL-CPU (no GPU comparison target).

use spdistal::prelude::Trace;
use spdistal_bench::{
    cpu_profile, dataset_scale, gpu_profile, make_inputs, run_baseline, run_spdistal,
    run_spdistal_spmm_batched_auto, time_scale, Kern,
};
use spdistal_runtime::Machine;
use spdistal_sparse::dataset;

fn main() {
    let scale = dataset_scale();
    let gpu = gpu_profile();
    let cpu = cpu_profile();
    let trace = Trace::enabled();
    println!("Figure 11: GPU strong scaling heatmaps (full-scale-equivalent ms; * marks fastest; DNC = does not complete)");
    println!(
        "dataset scale = {scale}, GPU memory = {} MiB (scaled V100)\n",
        gpu.proc.mem_capacity / (1 << 20)
    );

    let matrices = dataset::matrices();

    // --- SpMV: row-based, short runtimes, scale to 8 GPUs ---------------
    heatmap(
        &trace,
        "SpMV",
        &matrices,
        &[1, 2, 4, 8],
        scale,
        |inputs, gpus| {
            let machine = Machine::grid1d(gpus, gpu.clone());
            vec![
                (
                    "SpDISTAL",
                    run_spdistal(Kern::SpMv, inputs, gpus, &gpu, false),
                ),
                (
                    "PETSc",
                    flatten(run_baseline("petsc", Kern::SpMv, inputs, &machine)),
                ),
                (
                    "Trilinos",
                    flatten(run_baseline("trilinos", Kern::SpMv, inputs, &machine)),
                ),
            ]
        },
    );

    // --- SpMM: non-zero (replicates C) vs batched vs baselines ----------
    heatmap(
        &trace,
        "SpMM",
        &matrices,
        &[4, 8, 16, 32, 64],
        scale,
        |inputs, gpus| {
            let machine = Machine::grid1d(gpus, gpu.clone());
            vec![
                (
                    "SpDISTAL",
                    run_spdistal(Kern::SpMm, inputs, gpus, &gpu, true),
                ),
                (
                    "SpD-Batched",
                    run_spdistal_spmm_batched_auto(inputs, gpus, &gpu),
                ),
                (
                    "PETSc",
                    flatten(run_baseline("petsc", Kern::SpMm, inputs, &machine)),
                ),
                (
                    "Trilinos",
                    flatten(run_baseline("trilinos", Kern::SpMm, inputs, &machine)),
                ),
            ]
        },
    );

    // --- SpAdd3: row-based vs Trilinos (PETSc has no GPU SpAdd) ---------
    heatmap(
        &trace,
        "SpAdd3",
        &matrices,
        &[4, 8, 16, 32, 64],
        scale,
        |inputs, gpus| {
            let machine = Machine::grid1d(gpus, gpu.clone());
            vec![
                (
                    "SpDISTAL",
                    run_spdistal(Kern::SpAdd3, inputs, gpus, &gpu, false),
                ),
                (
                    "Trilinos",
                    flatten(run_baseline("trilinos", Kern::SpAdd3, inputs, &machine)),
                ),
            ]
        },
    );

    // --- SDDMM: GPU non-zero schedule vs SpDISTAL's CPU kernel ----------
    heatmap(
        &trace,
        "SDDMM",
        &matrices,
        &[4, 8, 16, 32, 64],
        scale,
        |inputs, gpus| {
            let cpu_nodes = (gpus / 4).max(1);
            vec![
                (
                    "SpDISTAL",
                    run_spdistal(Kern::Sddmm, inputs, gpus, &gpu, true),
                ),
                (
                    "SpD-CPU",
                    run_spdistal(Kern::Sddmm, inputs, cpu_nodes, &cpu, true),
                ),
            ]
        },
    );
    println!(
        "run_report_json={}",
        trace.run_report_json("fig11_gpu_heatmap")
    );
}

type SysResult = Result<spdistal_baselines::BaselineResult, String>;

fn flatten(r: Option<SysResult>) -> SysResult {
    r.unwrap_or_else(|| Err("unsupported".into()))
}

fn heatmap(
    trace: &Trace,
    title: &str,
    specs: &[spdistal_sparse::dataset::DatasetSpec],
    gpu_counts: &[usize],
    scale: f64,
    mut run: impl FnMut(&spdistal_bench::Inputs, usize) -> Vec<(&'static str, SysResult)>,
) {
    println!("=== {title} ===");
    let kern = match title {
        "SpMV" => Kern::SpMv,
        "SpMM" => Kern::SpMm,
        "SpAdd3" => Kern::SpAdd3,
        _ => Kern::Sddmm,
    };
    let mut wins: std::collections::BTreeMap<&str, usize> = Default::default();
    let mut cells = 0usize;
    for spec in specs {
        let inputs = make_inputs(kern, &spec.generate(scale));
        print!("{:<16}", spec.name);
        for &gpus in gpu_counts {
            let results = run(&inputs, gpus);
            let best = results
                .iter()
                .filter_map(|(n, r)| r.as_ref().ok().map(|x| (*n, x.time)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
            let cell = match best {
                Some((name, t)) => {
                    *wins.entry(name).or_default() += 1;
                    cells += 1;
                    trace.observe_ns("cell_best_model_ns", (t * 1e9) as u64);
                    if name.starts_with("SpD") {
                        trace.add("spdistal_wins", 1);
                    }
                    format!("{}*{:.1}", initials(name), t * 1e3 / time_scale())
                }
                None => {
                    trace.add("dnc_cells", 1);
                    "DNC".to_string()
                }
            };
            trace.add("cells", 1);
            print!(" {cell:>12}");
        }
        println!();
    }
    print!("  [{} GPUs: {:?}] fastest-system wins: ", title, gpu_counts);
    for (n, w) in &wins {
        print!("{n} {w}/{cells}  ");
    }
    println!("\n");
}

fn initials(name: &str) -> &str {
    match name {
        "SpDISTAL" => "S",
        "SpD-Batched" => "B",
        "SpD-CPU" => "C",
        "PETSc" => "P",
        "Trilinos" => "T",
        other => other,
    }
}
