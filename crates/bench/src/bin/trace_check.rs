//! Chrome-trace checker for CI: validate a trace file written by
//! `Trace::write_chrome_trace` and assert it contains required events.
//!
//! ```text
//! trace_check <trace.json> [--require <category-or-name>]... [--summary]
//! ```
//!
//! Validation checks the trace-event JSON shape (every event has a name, a
//! known phase, pid/tid; timed events carry non-negative timestamps and
//! durations). Each `--require` matches either an event *category*
//! (`flush`, `launch`, `span`, `steal`, `cache`, `auto`, `model`) or an
//! exact event *name* (`steal`, `auto-decision`, `plan-cache hit`, ...)
//! and fails unless at least one such event is present. `--summary`
//! additionally prints per-category event counts and, for categories with
//! window (`"X"`) events, duration percentiles — for quick eyeballing of
//! harness runs. Exits non-zero with a message on any failure, prints a
//! one-line summary on success.

use spdistal_obs::validate_chrome_trace;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut summary = false;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--require" => {
                let Some(what) = args.get(k + 1) else {
                    eprintln!("trace_check: --require needs a <category-or-name>");
                    std::process::exit(2);
                };
                required.push(what.clone());
                k += 1;
            }
            "--summary" => summary = true,
            other if path.is_none() && !other.starts_with("--") => path = Some(other.to_string()),
            other => {
                eprintln!(
                    "trace_check: unexpected argument '{other}' \
                     (usage: trace_check <trace.json> [--require <category-or-name>]... \
                     [--summary])"
                );
                std::process::exit(2);
            }
        }
        k += 1;
    }
    let Some(path) = path else {
        eprintln!("trace_check: missing <trace.json> argument");
        std::process::exit(2);
    };

    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let stats = match validate_chrome_trace(&src) {
        Ok(stats) => stats,
        Err(e) => {
            eprintln!("trace_check: {path} is not a well-formed Chrome trace: {e}");
            std::process::exit(1);
        }
    };

    if summary {
        println!("trace_check: {path} summary");
        println!(
            "  {:<10} {:>8}   duration percentiles (us, upper bounds)",
            "category", "events"
        );
        for (cat, n) in &stats.by_cat {
            match stats.dur_ns_by_cat.get(cat) {
                Some(h) if !h.is_empty() => {
                    let s = h.summarize().scaled(1e-3);
                    println!(
                        "  {:<10} {:>8}   p50 {:>12.3}  p95 {:>12.3}  p99 {:>12.3}  \
                         mean {:>12.3}  max {:>12.3}",
                        cat, n, s.p50, s.p95, s.p99, s.mean, s.max
                    );
                }
                _ => println!("  {cat:<10} {n:>8}   (instant events only)"),
            }
        }
    }

    let mut missing = Vec::new();
    for what in &required {
        let n = stats.count(what);
        if n == 0 {
            missing.push(what.clone());
        } else {
            println!("trace_check: {what}: {n} event(s)");
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "trace_check: {path} valid but missing required events: {}",
            missing.join(", ")
        );
        std::process::exit(1);
    }
    println!(
        "trace_check: {path} OK — {} events across {} tracks",
        stats.events,
        stats.tracks.len()
    );
}
