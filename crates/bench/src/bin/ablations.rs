//! Ablation studies for the design choices DESIGN.md calls out
//! (Section VI-C of the paper discusses each mechanism qualitatively):
//!
//! 1. **Universe vs non-zero partitioning under skew** — sweep the degree
//!    skew of the input and compare the two SpMV schedules: the crossover
//!    shows exactly when paying the non-zero split's output reduction is
//!    worth it.
//! 2. **Matched vs mismatched data/computation distributions** — the same
//!    row-based schedule over row-distributed vs non-zero-distributed data;
//!    the mismatch is valid but pays reshaping communication (Section II-D).
//! 3. **Fusion on/off for SpAdd3** — SpDISTAL's fused ternary add vs the
//!    same compiler running two pairwise adds with a materialized
//!    temporary (what libraries are forced to do).

use spdistal::prelude::*;
use spdistal::{access, assign, schedule_nonzero, schedule_outer_dim};
use spdistal_bench::time_scale;
use spdistal_sparse::{dense_vector, generate, reference, CooTensor, LevelFormat, SpTensor};

const PIECES: usize = 16;

fn cpu() -> MachineProfile {
    MachineProfile::lassen_cpu().time_scaled(time_scale())
}

/// A matrix where a `frac` fraction of non-zeros concentrates in 1% of rows.
fn matrix_with_skew(n: usize, nnz: usize, frac: f64) -> SpTensor {
    let mut coo = CooTensor::new(vec![n, n]);
    let hot_rows = (n / 100).max(1);
    let hot_nnz = (nnz as f64 * frac) as usize;
    for e in 0..hot_nnz {
        let i = (e % hot_rows) as i64;
        let j = ((e * 7919) % n) as i64;
        coo.push(&[i, j], 1.0);
    }
    for e in 0..nnz - hot_nnz {
        let i = (hot_rows + e % (n - hot_rows)) as i64;
        let j = ((e * 104729) % n) as i64;
        coo.push(&[i, j], 1.0);
    }
    coo.build(&[LevelFormat::Dense, LevelFormat::Compressed])
}

fn spmv_time(b: &SpTensor, nonzero: bool) -> (f64, u64, f64) {
    let n = b.dims()[0];
    let c = generate::dense_vec(n, 3);
    let mut ctx = Context::new(Machine::grid1d(PIECES, cpu()));
    let fmt = if nonzero {
        Format::nonzero_csr()
    } else {
        Format::blocked_csr()
    };
    ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
        .unwrap();
    ctx.add_tensor("B", b.clone(), fmt).unwrap();
    ctx.add_tensor("c", dense_vector(c.clone()), Format::replicated_dense_vec())
        .unwrap();
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
    let sched = if nonzero {
        schedule_nonzero(&mut ctx, &stmt, "B", 2, PIECES, ParallelUnit::CpuThread).unwrap()
    } else {
        schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread)
    };
    let plan = ctx.compile(&stmt, &sched).unwrap();
    let imb = plan
        .inputs
        .iter()
        .find(|p| p.tensor == "B")
        .unwrap()
        .part
        .vals
        .imbalance();
    let r = ctx.run(&plan).unwrap();
    let expect = reference::spmv(b, &c);
    assert!(reference::approx_eq(
        r.output.as_tensor().unwrap().vals(),
        &expect,
        1e-12
    ));
    (r.time, r.comm_bytes, imb)
}

fn ablation_partitioning(trace: &Trace) {
    println!("--- Ablation 1: universe vs non-zero partition under skew ({PIECES} nodes) ---");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>10}",
        "hot frac", "row imbal.", "row (ms)", "nonzero (ms)", "winner"
    );
    for frac in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let b = matrix_with_skew(20_000, 400_000, frac);
        let (t_row, _, imb) = spmv_time(&b, false);
        let (t_nz, _, _) = spmv_time(&b, true);
        trace.observe_ns("row_model_ns", (t_row * 1e9) as u64);
        trace.observe_ns("nonzero_model_ns", (t_nz * 1e9) as u64);
        if t_nz < t_row {
            trace.add("nonzero_wins", 1);
        }
        println!(
            "{:>10.1} {:>12.2} {:>14.4} {:>14.4} {:>10}",
            frac,
            imb,
            t_row * 1e3,
            t_nz * 1e3,
            if t_row < t_nz { "row" } else { "nonzero" }
        );
    }
    println!("(non-zero wins once skew makes the row split idle most processors)\n");
}

fn ablation_distribution_mismatch() {
    println!("--- Ablation 2: matched vs mismatched data distribution (row schedule) ---");
    let b = generate::rmat_default(13, 150_000, 5);
    let n = b.dims()[0];
    let c = generate::dense_vec(n, 6);
    println!(
        "{:>12} {:>14} {:>14}",
        "data dist", "time (ms)", "comm (bytes)"
    );
    for (name, fmt) in [
        ("row-wise", Format::blocked_csr()),
        ("non-zero", Format::nonzero_csr()),
    ] {
        let mut ctx = Context::new(Machine::grid1d(PIECES, cpu()));
        ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
            .unwrap();
        ctx.add_tensor("B", b.clone(), fmt).unwrap();
        ctx.add_tensor("c", dense_vector(c.clone()), Format::replicated_dense_vec())
            .unwrap();
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
        let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        println!("{:>12} {:>14.4} {:>14}", name, r.time * 1e3, r.comm_bytes);
    }
    println!("(the mismatched case is valid but reshapes the sparse data at kernel time)\n");
}

fn spadd_pair(ctx_b: &SpTensor, ctx_c: &SpTensor, pieces: usize) -> (SpTensor, f64) {
    let (rows, cols) = (ctx_b.dims()[0], ctx_b.dims()[1]);
    let empty = spdistal::plan::empty_csr(rows, cols);
    let mut ctx = Context::new(Machine::grid1d(pieces, cpu()));
    ctx.add_tensor("B", ctx_b.clone(), Format::blocked_csr())
        .unwrap();
    ctx.add_tensor("C", ctx_c.clone(), Format::blocked_csr())
        .unwrap();
    ctx.add_tensor("Z", empty.clone(), Format::blocked_csr())
        .unwrap();
    ctx.add_tensor("A", empty, Format::blocked_csr()).unwrap();
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    // Pairwise add expressed as a ternary with a structurally empty third
    // operand, so it flows through the same compiled path.
    let stmt = assign(
        "A",
        &[i, j],
        access("B", &[i, j]) + access("C", &[i, j]) + access("Z", &[i, j]),
    );
    let sched = schedule_outer_dim(&mut ctx, &stmt, pieces, ParallelUnit::CpuThread);
    let r = ctx.compile_and_run(&stmt, &sched).unwrap();
    (r.output.as_tensor().unwrap().clone(), r.time)
}

fn ablation_fusion(trace: &Trace) {
    println!("--- Ablation 3: fused vs pairwise SpAdd3 (same compiler, {PIECES} nodes) ---");
    let b = generate::rmat_default(13, 150_000, 7);
    let c = generate::shift_last_dim(&b, 1);
    let d = generate::shift_last_dim(&b, 2);
    let (rows, cols) = (b.dims()[0], b.dims()[1]);
    let expect = reference::spadd3(&b, &c, &d);

    // Fused: one pass, one assembly.
    let mut ctx = Context::new(Machine::grid1d(PIECES, cpu()));
    for (name, t) in [("B", &b), ("C", &c), ("D", &d)] {
        ctx.add_tensor(name, t.clone(), Format::blocked_csr())
            .unwrap();
    }
    ctx.add_tensor(
        "A",
        spdistal::plan::empty_csr(rows, cols),
        Format::blocked_csr(),
    )
    .unwrap();
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = assign(
        "A",
        &[i, j],
        access("B", &[i, j]) + access("C", &[i, j]) + access("D", &[i, j]),
    );
    let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
    let fused = ctx.compile_and_run(&stmt, &sched).unwrap();
    assert!(reference::tensors_approx_eq(
        fused.output.as_tensor().unwrap(),
        &expect,
        1e-12
    ));

    // Unfused: T = B + C, then A = T + D — a materialized temporary and a
    // second full assembly.
    let (tmp, t1) = spadd_pair(&b, &c, PIECES);
    let (out, t2) = spadd_pair(&tmp, &d, PIECES);
    assert!(reference::tensors_approx_eq(&out, &expect, 1e-12));

    trace.observe_ns("fused_model_ns", (fused.time * 1e9) as u64);
    trace.observe_ns("pairwise_model_ns", ((t1 + t2) * 1e9) as u64);
    trace.add(
        "fusion_speedup_milli",
        ((t1 + t2) / fused.time * 1e3) as u64,
    );
    println!("{:>22} {:>14}", "variant", "time (ms)");
    println!("{:>22} {:>14.4}", "fused (1 pass)", fused.time * 1e3);
    println!("{:>22} {:>14.4}", "pairwise (2 passes)", (t1 + t2) * 1e3);
    println!(
        "fusion speedup: {:.2}x (the paper's SpAdd3 result in miniature)\n",
        (t1 + t2) / fused.time
    );
}

fn main() {
    let trace = Trace::enabled();
    ablation_partitioning(&trace);
    ablation_distribution_mismatch();
    ablation_fusion(&trace);
    println!("run_report_json={}", trace.run_report_json("ablations"));
}
