//! Figure 12: GPU vs CPU strong scaling for SpTTV and SpMTTKRP.
//!
//! No distributed GPU comparison target exists for these kernels, so the
//! paper compares SpDISTAL's GPU kernels (non-zero-based schedules) to
//! SpDISTAL's own CPU kernels on the same number of nodes. Each cell shows
//! the speedup of the faster system over the slower (G = GPU faster,
//! C = CPU faster), as in the paper's heatmap. Expected shape: GPU wins
//! with ~2x medians once data fits, growing with scale on SpMTTKRP thanks
//! to the load-balanced non-zero schedule; small tensors at large GPU
//! counts can flip to CPU (launch overhead dominates).

use spdistal::prelude::Trace;
use spdistal_bench::{cpu_profile, dataset_scale, gpu_profile, make_inputs, run_spdistal, Kern};
use spdistal_sparse::dataset;

const NODES: [usize; 5] = [1, 2, 4, 8, 16];

fn main() {
    let scale = dataset_scale();
    let gpu = gpu_profile();
    let cpu = cpu_profile();
    let trace = Trace::enabled();
    println!("Figure 12: SpDISTAL GPU vs CPU on SpTTV / SpMTTKRP");
    println!("cells: (faster)x(speedup); G = GPU kernel faster, C = CPU kernel faster\n");

    for kern in [Kern::SpTtv, Kern::SpMttkrp] {
        println!("=== {} ===", kern.name());
        print!("{:<18}", "tensor \\ nodes");
        for n in NODES {
            print!("{:>12}", format!("{n} ({} GPU)", 4 * n));
        }
        println!();
        let mut gpu_wins = 0;
        let mut total = 0;
        for spec in dataset::tensors3() {
            let inputs = make_inputs(kern, &spec.generate(scale));
            print!("{:<18}", spec.name);
            for nodes in NODES {
                // GPU: non-zero-based schedule on 4 GPUs per node.
                let tg = run_spdistal(kern, &inputs, 4 * nodes, &gpu, true);
                // CPU: slice-based schedule, one processor per node.
                let tc = run_spdistal(kern, &inputs, nodes, &cpu, false);
                let cell = match (tg, tc) {
                    (Ok(g), Ok(c)) => {
                        total += 1;
                        trace.observe_ns("gpu_model_ns", (g.time * 1e9) as u64);
                        trace.observe_ns("cpu_model_ns", (c.time * 1e9) as u64);
                        if g.time < c.time {
                            gpu_wins += 1;
                            format!("G x{:.2}", c.time / g.time)
                        } else {
                            format!("C x{:.2}", g.time / c.time)
                        }
                    }
                    (Err(_), Ok(_)) => "C (G-DNC)".to_string(),
                    (Ok(_), Err(_)) => "G (C-DNC)".to_string(),
                    _ => "DNC".to_string(),
                };
                print!("{cell:>12}");
            }
            println!();
        }
        trace.add("gpu_wins", gpu_wins);
        trace.add("cells", total);
        println!("  GPU kernel faster in {gpu_wins}/{total} cells\n");
    }
    println!(
        "run_report_json={}",
        trace.run_report_json("fig12_gpu_vs_cpu")
    );
}
