#!/usr/bin/env bash
# Tier-1 gate plus hygiene: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

echo "==> pipeline tests: inter-launch dependence props + bitwise identity"
cargo test -q -p spdistal-runtime --test pipeline_props
cargo test -q --test pipeline_identity

echo "==> bench smoke: parallel_exec (serial vs parallel wall-clock)"
cargo bench -p spdistal-bench --bench parallel_exec

echo "==> bench smoke: pipeline_exec (launch-at-a-time vs pipelined CP-ALS)"
cargo bench -p spdistal-bench --bench pipeline_exec

echo "==> bench smoke: skewed_exec (split vs unsplit on skewed inputs)"
cargo bench -p spdistal-bench --bench skewed_exec

echo "==> bench smoke: model_pipeline (modeled sequential vs graph-ordered CP-ALS)"
# Must emit 'modeled_overlap=<r>' for perf trajectory files.
model_out="$(cargo bench -p spdistal-bench --bench model_pipeline)"
echo "$model_out"
grep "^modeled_overlap=" <<<"$model_out"

echo "==> bench smoke: fig10 strong scaling (small scale)"
SPDISTAL_SCALE=0.05 cargo run --release -q -p spdistal-bench --bin fig10_cpu_strong_scaling

echo "ci.sh: all green"
