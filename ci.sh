#!/usr/bin/env bash
# Tier-1 gate plus hygiene: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo doc --no-deps -q (rustdoc examples on the Program front-end must build)"
cargo doc --no-deps -q

echo "==> cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

echo "==> pipeline tests: inter-launch dependence props + bitwise identity"
cargo test -q -p spdistal-runtime --test pipeline_props
cargo test -q --test pipeline_identity

echo "==> bench smoke: parallel_exec (serial vs parallel wall-clock)"
cargo bench -p spdistal-bench --bench parallel_exec

echo "==> bench smoke: pipeline_exec (launch-at-a-time vs pipelined CP-ALS)"
cargo bench -p spdistal-bench --bench pipeline_exec

echo "==> program_api smoke: quickstart via Program + ScheduleSpec::Auto"
# On the clustered input the auto-scheduler must pick (and log) the
# non-zero distribution; on the default banded input, outer-dim.
quickstart_out="$(cargo run --release -q --example quickstart -- --skew 0.9 --parallel)"
echo "$quickstart_out"
grep -q "auto-scheduler picked: non-zero" <<<"$quickstart_out"
quickstart_default_out="$(cargo run --release -q --example quickstart)"
grep -q "auto-scheduler picked: outer-dim" <<<"$quickstart_default_out"

echo "==> trace smoke: quickstart --skew 0.95 --trace, validated by trace_check"
# The skewed parallel run must record ≥1 steal and ≥1 auto-decision event
# (plus spans, launches, cache traffic, and model-timeline events), and —
# since the quickstart drives SpMV over a CSR tensor, a blessed pair in
# the specialized kernel table (docs/kernels.md) — a kernel-dispatch
# event naming the monomorphized kernel.
cargo run --release -q --example quickstart -- --skew 0.95 --trace /tmp/spd_trace.json |
  grep "^run_report_json="
cargo run --release -q -p spdistal-bench --bin trace_check -- /tmp/spd_trace.json --summary \
  --require steal --require auto-decision \
  --require span --require launch --require cache --require model \
  --require kernel-dispatch --require kernel-specialized

echo "==> example smoke: load_balance via Program (row vs non-zero)"
cargo run --release -q --example load_balance | grep "^run_report_json="

echo "==> streaming smoke: delta batches drive incremental recompute"
# The streaming example feeds ~1%-of-nnz delta batches through
# update_batch + run_incremental and bit-compares against a fresh full
# program; the trace must show at least one incremental run that skipped
# spans (the fast path actually engaged, not 15 silent fallbacks).
cargo run --release -q --example streaming -- --trace /tmp/spd_stream_trace.json |
  grep "^run_report_json="
cargo run --release -q -p spdistal-bench --bin trace_check -- /tmp/spd_stream_trace.json \
  --require incremental --require incremental-skip
rm -f /tmp/spd_stream_trace.json

echo "==> serving smoke: spd-server on a UDS, two tenants share the plan cache"
# Two tenants submit the same skewed SpMV: tenant t1 must stream at least
# one auto-decision, tenant t2 must ride t1's compiled plan
# (plan_cache.miss=0), the merged report must attribute the reuse
# cross-tenant, and shutdown must drain cleanly (no leaked server) with a
# trace that trace_check accepts.
spd_sock="/tmp/spd_ci_$$.sock"
spd_trace="/tmp/spd_server_trace_$$.json"
rm -f "$spd_sock" "$spd_trace"
cargo run --release -q -p spdistal-server --bin spd-server -- \
  --uds "$spd_sock" --trace "$spd_trace" > /tmp/spd_server_out_$$.log 2>&1 &
spd_pid=$!
for _ in $(seq 1 100); do [ -S "$spd_sock" ] && break; sleep 0.1; done
[ -S "$spd_sock" ] || { echo "spd-server never bound $spd_sock"; exit 1; }
t1_out="$(cargo run --release -q -p spdistal-client --bin spd-client -- \
  --uds "$spd_sock" --tenant t1 demo --skew 0.9)"
echo "$t1_out"
grep -q "event auto_decision:" <<<"$t1_out"
t2_out="$(cargo run --release -q -p spdistal-client --bin spd-client -- \
  --uds "$spd_sock" --tenant t2 demo --skew 0.9)"
echo "$t2_out"
grep -q "plan_cache.miss=0" <<<"$t2_out"
cargo run --release -q -p spdistal-client --bin spd-client -- \
  --uds "$spd_sock" report | grep -q "plan_cache.hit.cross_tenant"
cargo run --release -q -p spdistal-client --bin spd-client -- \
  --uds "$spd_sock" shutdown
for _ in $(seq 1 100); do kill -0 "$spd_pid" 2>/dev/null || break; sleep 0.1; done
if kill -0 "$spd_pid" 2>/dev/null; then
  echo "spd-server leaked (pid $spd_pid) after shutdown"; kill "$spd_pid"; exit 1
fi
wait "$spd_pid"
[ ! -e "$spd_sock" ] || { echo "spd-server left its socket behind"; exit 1; }
cargo run --release -q -p spdistal-bench --bin trace_check -- "$spd_trace" \
  --require cache --require auto-decision
rm -f "$spd_trace" /tmp/spd_server_out_$$.log

echo "==> spd-harness: ci bench suite, merged reports, regression gate"
# Runs every ci-suite scenario as release child processes (fixed seeds,
# pinned scale/threads), merges repeats into BENCH_<scenario>.json, and
# exits nonzero if any histogram mean regressed past SPD_BENCH_TOLERANCE
# versus the committed trajectory point. See docs/benchmarking.md.
cargo run --release -q -p spdistal-bench --bin spd-harness -- run --suite ci

echo "ci.sh: all green"
