#!/usr/bin/env bash
# Tier-1 gate plus hygiene: everything a PR must keep green.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo doc --no-deps -q (rustdoc examples on the Program front-end must build)"
cargo doc --no-deps -q

echo "==> cargo test --workspace -q (superset of the tier-1 'cargo test -q')"
cargo test --workspace -q

echo "==> pipeline tests: inter-launch dependence props + bitwise identity"
cargo test -q -p spdistal-runtime --test pipeline_props
cargo test -q --test pipeline_identity

echo "==> bench smoke: parallel_exec (serial vs parallel wall-clock)"
cargo bench -p spdistal-bench --bench parallel_exec

echo "==> bench smoke: pipeline_exec (launch-at-a-time vs pipelined CP-ALS)"
cargo bench -p spdistal-bench --bench pipeline_exec

echo "==> bench smoke: skewed_exec (split vs unsplit on skewed inputs)"
# Must emit 'run_report_json=<json>'; persisted as the perf trajectory.
skewed_out="$(cargo bench -p spdistal-bench --bench skewed_exec)"
echo "$skewed_out"
grep -m1 "^run_report_json=" <<<"$skewed_out" | sed 's/^run_report_json=//' >BENCH_skewed_exec.json
echo "wrote BENCH_skewed_exec.json"

echo "==> bench smoke: model_pipeline (modeled sequential vs graph-ordered CP-ALS)"
# Must emit 'modeled_overlap=<r>' for perf trajectory files.
model_out="$(cargo bench -p spdistal-bench --bench model_pipeline)"
echo "$model_out"
grep "^modeled_overlap=" <<<"$model_out"

echo "==> program_api smoke: quickstart via Program + ScheduleSpec::Auto"
# On the clustered input the auto-scheduler must pick (and log) the
# non-zero distribution; on the default banded input, outer-dim.
quickstart_out="$(cargo run --release -q --example quickstart -- --skew 0.9 --parallel)"
echo "$quickstart_out"
grep -q "auto-scheduler picked: non-zero" <<<"$quickstart_out"
quickstart_default_out="$(cargo run --release -q --example quickstart)"
grep -q "auto-scheduler picked: outer-dim" <<<"$quickstart_default_out"

echo "==> bench smoke: program_overhead (plan cache vs per-iteration recompile)"
# Must emit 'cache_hit_speedup=<r>' and 'run_report_json=<json>'; the
# latter is persisted as the perf trajectory.
overhead_out="$(cargo bench -p spdistal-bench --bench program_overhead)"
echo "$overhead_out"
grep "^cache_hit_speedup=" <<<"$overhead_out"
grep -m1 "^run_report_json=" <<<"$overhead_out" | sed 's/^run_report_json=//' >BENCH_program_overhead.json
echo "wrote BENCH_program_overhead.json"

echo "==> trace smoke: quickstart --skew 0.95 --trace, validated by trace_check"
# The skewed parallel run must record ≥1 steal and ≥1 auto-decision event
# (plus spans, launches, cache traffic, and model-timeline events).
cargo run --release -q --example quickstart -- --skew 0.95 --trace /tmp/spd_trace.json |
  grep "^run_report_json="
cargo run --release -q -p spdistal-bench --bin trace_check -- /tmp/spd_trace.json \
  --require steal --require auto-decision \
  --require span --require launch --require cache --require model

echo "==> bench smoke: fig10 strong scaling (small scale)"
SPDISTAL_SCALE=0.05 cargo run --release -q -p spdistal-bench --bin fig10_cpu_strong_scaling

echo "ci.sh: all green"
