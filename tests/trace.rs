//! Structured-trace integration tests: a traced `Program` run must emit a
//! well-ordered event stream (launch windows contain their spans, steals
//! reference live work, flushes bracket their batches), export
//! well-formed Chrome trace-event JSON, and cost (near) nothing when
//! tracing is disabled.

use std::collections::HashSet;
use std::time::Instant;

use spdistal_repro::obs::{validate_chrome_trace, Event, Trace};
use spdistal_repro::sparse::{dense_vector, generate};
use spdistal_repro::spdistal::prelude::*;

const PIECES: usize = 4;

/// The quickstart workload: auto-scheduled SpMV on a hub-clustered R-MAT,
/// on the work-stealing pool so steals (and the warm-up feedback) are real.
fn skewed_program(trace: &Trace) -> CompiledProgram {
    let b = generate::rmat_clustered(11, 40_000, 0.95, 42);
    let n = b.dims()[0];
    let c = generate::dense_vec(b.dims()[1], 7);
    Program::on(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()))
        .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
        .tensor("B", Format::blocked_csr(), b)
        .tensor("c", Format::replicated_dense_vec(), dense_vector(c))
        .stmt("a(i) = B(i,j) * c(j)")
        .auto()
        .exec_mode(ExecMode::Parallel(3))
        .trace(trace.clone())
        .build()
        .unwrap()
}

#[test]
fn traced_run_orders_and_nests_events() {
    let trace = Trace::enabled();
    let mut program = skewed_program(&trace);
    program.run_iters(2).unwrap();

    let rec = trace.recorder().unwrap();
    assert_eq!(rec.dropped(), 0, "small run must not evict events");
    let events = rec.snapshot();

    // Launch milestones: issue <= start <= finish per launch id, on the
    // control lane.
    let mut issues = std::collections::HashMap::new();
    let mut starts = std::collections::HashMap::new();
    let mut finishes = std::collections::HashMap::new();
    for e in &events {
        match e.event {
            Event::LaunchIssue { launch, .. } => {
                assert_eq!(e.lane, 0, "launch milestones live on the control lane");
                issues.insert(launch, e.ts_ns);
            }
            Event::LaunchStart { launch, .. } => {
                starts.insert(launch, e.ts_ns);
            }
            Event::LaunchFinish { launch, .. } => {
                finishes.insert(launch, e.ts_ns);
            }
            _ => {}
        }
    }
    assert!(!issues.is_empty(), "a traced run must issue launches");
    for (launch, start) in &starts {
        let issue = issues[launch];
        let finish = finishes[launch];
        assert!(
            issue <= *start && *start <= finish,
            "launch {launch}: issue {issue} <= start {start} <= finish {finish}"
        );
    }

    // Spans: begin <= end per (lane, launch, task, span), nested within
    // their launch's [start, finish] window, executed on worker lanes.
    let mut open = std::collections::HashMap::new();
    let mut live: HashSet<(u32, u32)> = HashSet::new();
    let mut span_pairs = 0usize;
    for e in &events {
        match e.event {
            Event::SpanBegin { launch, task, span } => {
                assert!(e.lane >= 1, "spans execute on worker lanes");
                live.insert((task, span));
                open.insert((e.lane, launch, task, span), e.ts_ns);
            }
            Event::SpanEnd { launch, task, span } => {
                let t0 = open
                    .remove(&(e.lane, launch, task, span))
                    .expect("SpanEnd must match an open SpanBegin on the same lane");
                assert!(t0 <= e.ts_ns, "span begin must not follow its end");
                assert!(
                    starts[&launch] <= t0 && e.ts_ns <= finishes[&launch],
                    "span [{t0}, {}] must nest within launch {launch}'s window",
                    e.ts_ns
                );
                span_pairs += 1;
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "every SpanBegin must be closed");
    assert!(span_pairs > 0, "a traced run must execute spans");

    // Steals reference live work and a real victim, from a different lane.
    for e in &events {
        if let Event::Steal { victim, task, span } = e.event {
            assert!(
                live.contains(&(task, span)),
                "steal of ({task}, {span}) must reference an executed item"
            );
            assert!((victim as usize) < 3, "victim must be a real worker");
            assert_ne!(e.lane, victim + 1, "a worker cannot steal from itself");
        }
    }

    // Flushes bracket their batches; one non-empty flush per iteration.
    let begins = events
        .iter()
        .filter(|e| matches!(e.event, Event::FlushBegin { .. }))
        .count();
    let ends: Vec<u64> = events
        .iter()
        .filter_map(|e| match e.event {
            Event::FlushEnd { tasks, .. } => Some(tasks),
            _ => None,
        })
        .collect();
    assert_eq!(begins, ends.len(), "every FlushBegin needs its FlushEnd");
    assert!(begins >= 2, "two iterations flush at least twice");
    assert!(ends.iter().all(|&t| t > 0), "flushed work has tasks");

    // The auto-scheduler decision and the plan-cache traffic made it onto
    // the trace, with resolvable interned strings.
    let decision = events
        .iter()
        .find_map(|e| match e.event {
            Event::AutoDecision { choice, .. } => Some(choice),
            _ => None,
        })
        .expect("auto-scheduled run records its decision");
    let choice = rec.resolve(decision).unwrap();
    assert!(
        choice == "outer-dim" || choice == "non-zero",
        "unexpected choice '{choice}'"
    );
    let key = events
        .iter()
        .find_map(|e| match e.event {
            Event::PlanCacheMiss { key } => Some(key),
            _ => None,
        })
        .expect("first iteration misses the plan cache");
    assert!(
        rec.resolve(key).unwrap().contains(" | "),
        "cache-key events carry the PR-5 '<stmt> | <schedule> | <formats>' key"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::PlanCacheHit { .. })),
        "second iteration hits the plan cache"
    );

    // Model-timeline launches are ordered on the simulated clock.
    let mut model_launches = 0usize;
    for e in &events {
        if let Event::ModelLaunch {
            issue,
            start,
            finish,
            seq_span,
            ..
        } = e.event
        {
            assert!(issue <= start && start <= finish);
            assert!(seq_span >= 0.0);
            model_launches += 1;
        }
    }
    assert!(model_launches > 0, "model replay must be traced");
}

#[test]
fn chrome_trace_export_is_well_formed() {
    let trace = Trace::enabled();
    let mut program = skewed_program(&trace);
    program.run_iters(2).unwrap();

    let json = trace.chrome_trace().unwrap();
    let stats = validate_chrome_trace(&json).expect("exported trace must validate");
    for required in ["span", "launch", "flush", "cache", "auto", "model"] {
        assert!(
            stats.count(required) > 0,
            "chrome trace must contain {required} events"
        );
    }
    // One track per participating worker plus the control track — and the
    // model timeline renders as its own process.
    assert!(
        stats.tracks.len() >= 3,
        "expected control + worker + model tracks, got {:?}",
        stats.tracks
    );
}

/// The observability satellite's regression: with tracing *disabled*, the
/// instrumentation must cost under 2% of a run. Measured directly: time
/// the disabled no-op helpers at the event volume an enabled twin of the
/// same workload actually records, against the workload's runtime.
#[test]
fn disabled_tracing_overhead_is_under_two_percent() {
    const ITERS: usize = 3;

    // Event volume of the traced twin.
    let traced = Trace::enabled();
    let mut twin = skewed_program(&traced);
    twin.run_iters(ITERS).unwrap();
    let events = traced.recorder().unwrap().len() as u64
        + traced.metrics().unwrap().counter("steal_attempts").get();

    // Runtime of the untraced program (the trace handle defaults to
    // disabled — same code path every user runs).
    let mut program = skewed_program(&Trace::disabled());
    let t0 = Instant::now();
    program.run_iters(ITERS).unwrap();
    let run_seconds = t0.elapsed().as_secs_f64();

    // Cost of that many disabled-hot-path calls (span is the widest no-op:
    // two events plus a counter and a histogram when enabled).
    let disabled = Trace::disabled();
    let t0 = Instant::now();
    for k in 0..events {
        disabled.span(0, k as u32, 0, k, k + 1);
        disabled.steal_attempt(false);
    }
    let noop_seconds = t0.elapsed().as_secs_f64();

    assert!(
        noop_seconds < run_seconds * 0.02,
        "disabled tracing must cost <2% of the run: {noop_seconds:.6}s \
         of no-ops vs {run_seconds:.6}s of work ({events} events)"
    );
}
