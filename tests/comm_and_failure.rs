//! Integration tests for the communication model and failure behavior:
//! matched data/computation distributions move no sparse data, mismatched
//! ones pay for reshaping (Section II-D), and memory capacity surfaces as
//! OOM rather than wrong answers.

use spdistal_repro::runtime::{Machine, MachineProfile, RuntimeError};
use spdistal_repro::sparse::{dense_vector, generate};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_nonzero, schedule_outer_dim};

fn spmv_stmt(ctx: &mut Context) -> spdistal_repro::ir::Assignment {
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    assign("a", &[i], access("B", &[i, j]) * access("c", &[j]))
}

/// Row-based schedule over row-distributed data: after the initial
/// distribution, the kernel moves no B non-zeros at all.
#[test]
fn matched_distribution_moves_no_sparse_data() {
    let b = generate::banded(5000, 7, 1);
    let n = b.dims()[0];
    let mut ctx = Context::new(Machine::grid1d(8, MachineProfile::lassen_cpu()));
    ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
        .unwrap();
    ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
    ctx.add_tensor(
        "c",
        dense_vector(generate::dense_vec(n, 2)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    let stmt = spmv_stmt(&mut ctx);
    let sched = schedule_outer_dim(&mut ctx, &stmt, 8, ParallelUnit::CpuThread);
    let r = ctx.compile_and_run(&stmt, &sched).unwrap();
    assert_eq!(r.comm_bytes, 0, "matched distribution should be comm-free");
}

/// The same row-based schedule over *non-zero-distributed* data is valid
/// but pays to reshape the data (the performance-cost case the paper calls
/// out explicitly in Section II-D).
#[test]
fn mismatched_distribution_pays_communication() {
    let b = generate::rmat_default(9, 8000, 2);
    let n = b.dims()[0];
    let mut ctx = Context::new(Machine::grid1d(8, MachineProfile::lassen_cpu()));
    ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
        .unwrap();
    // Data distributed by non-zeros, computation distributed by rows.
    ctx.add_tensor("B", b, Format::nonzero_csr()).unwrap();
    ctx.add_tensor(
        "c",
        dense_vector(generate::dense_vec(n, 3)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    let stmt = spmv_stmt(&mut ctx);
    let sched = schedule_outer_dim(&mut ctx, &stmt, 8, ParallelUnit::CpuThread);
    let r = ctx.compile_and_run(&stmt, &sched).unwrap();
    assert!(
        r.comm_bytes > 0,
        "mismatched distributions must reshape data"
    );
}

/// Non-zero schedules on skewed inputs produce balanced work; row-based
/// schedules don't. Imbalance shows up directly in simulated time.
#[test]
fn nonzero_schedule_beats_rows_on_skew() {
    // A matrix with one huge row.
    let mut triplets: Vec<(i64, i64, f64)> = (0..4000).map(|j| (0i64, j as i64, 1.0)).collect();
    for i in 1..4000i64 {
        triplets.push((i, i, 1.0));
    }
    let b = spdistal_repro::sparse::csr_from_triplets(4000, 4000, &triplets);
    let c = generate::dense_vec(4000, 4);
    let mut times = Vec::new();
    for nonzero in [false, true] {
        // Scale fixed overheads down with the small test problem so the
        // work imbalance (not task launch latency) dominates.
        let profile = MachineProfile::lassen_cpu().time_scaled(1e-3);
        let mut ctx = Context::new(Machine::grid1d(8, profile));
        let fmt = if nonzero {
            Format::nonzero_csr()
        } else {
            Format::blocked_csr()
        };
        ctx.add_tensor(
            "a",
            dense_vector(vec![0.0; 4000]),
            Format::blocked_dense_vec(),
        )
        .unwrap();
        ctx.add_tensor("B", b.clone(), fmt).unwrap();
        ctx.add_tensor("c", dense_vector(c.clone()), Format::replicated_dense_vec())
            .unwrap();
        let stmt = spmv_stmt(&mut ctx);
        let sched = if nonzero {
            schedule_nonzero(&mut ctx, &stmt, "B", 2, 8, ParallelUnit::CpuThread).unwrap()
        } else {
            schedule_outer_dim(&mut ctx, &stmt, 8, ParallelUnit::CpuThread)
        };
        times.push(ctx.compile_and_run(&stmt, &sched).unwrap().time);
    }
    assert!(
        times[1] < times[0],
        "nonzero {} should beat row {}",
        times[1],
        times[0]
    );
}

/// GPU memory capacity turns into an OOM error, not silent wrong answers.
#[test]
fn gpu_oom_is_an_error() {
    let b = generate::uniform(2000, 2000, 40_000, 5);
    let tiny = MachineProfile::lassen_gpu(1e-8); // ~160 bytes of HBM
    let mut ctx = Context::new(Machine::grid1d(4, tiny));
    let err = ctx
        .add_tensor("B", b, Format::blocked_csr())
        .expect_err("must OOM");
    match err {
        spdistal_repro::spdistal::Error::Runtime(RuntimeError::Oom { .. }) => {}
        other => panic!("expected OOM, got {other}"),
    }
}

/// Invalid schedules are rejected at compile time with typed errors.
#[test]
fn bad_schedules_rejected() {
    let b = generate::uniform(100, 100, 500, 6);
    let mut ctx = Context::new(Machine::grid1d(4, MachineProfile::lassen_cpu()));
    ctx.add_tensor(
        "a",
        dense_vector(vec![0.0; 100]),
        Format::blocked_dense_vec(),
    )
    .unwrap();
    ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
    ctx.add_tensor(
        "c",
        dense_vector(generate::dense_vec(100, 7)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    let stmt = spmv_stmt(&mut ctx);

    // No distributed loop at all.
    let empty = Schedule::new();
    assert!(ctx.compile(&stmt, &empty).is_err());

    // Divide pieces disagree with the machine extent.
    let mut wrong = Schedule::new();
    let i = stmt.lhs.indices[0];
    let (io, _ii) = wrong.divide(ctx.vars_mut(), i, 3); // machine has 4
    wrong.distribute(io, 0);
    assert!(ctx.compile(&stmt, &wrong).is_err());

    // Communicate at a non-distributed loop.
    let mut sched = Schedule::new();
    sched.communicate(&["B"], i);
    assert!(ctx.compile(&stmt, &sched).is_err());
}

/// The deferred-execution model never synchronizes processors without a
/// data dependence: per-processor clocks differ after imbalanced work.
#[test]
fn deferred_execution_decouples_processors() {
    let mut triplets: Vec<(i64, i64, f64)> = (0..2000).map(|j| (0i64, j, 1.0)).collect();
    triplets.push((1500, 0, 1.0));
    let b = spdistal_repro::sparse::csr_from_triplets(2000, 2000, &triplets);
    let mut ctx = Context::new(Machine::grid1d(4, MachineProfile::lassen_cpu()));
    ctx.add_tensor(
        "a",
        dense_vector(vec![0.0; 2000]),
        Format::blocked_dense_vec(),
    )
    .unwrap();
    ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
    ctx.add_tensor(
        "c",
        dense_vector(generate::dense_vec(2000, 8)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    let stmt = spmv_stmt(&mut ctx);
    let sched = schedule_outer_dim(&mut ctx, &stmt, 4, ParallelUnit::CpuThread);
    ctx.compile_and_run(&stmt, &sched).unwrap();
    let clocks: Vec<f64> = (0..4).map(|p| ctx.runtime().proc_clock(p)).collect();
    assert!(
        clocks[0] > clocks[2],
        "proc 0 (dense row) should lag: {clocks:?}"
    );
}
