//! The incremental-recompute bit-identity bar: for every blessed
//! `(kernel, format)` pair, `CompiledProgram::run_incremental` after a
//! batch of coordinate deltas must produce **bit-identical** output values
//! to a from-scratch full recompute over the post-delta data — across
//! `SplitPolicy::{Off, Spans}` and insert / overwrite / delete / mixed
//! delta batches.
//!
//! Overwrite-only batches confined to low rows must additionally take the
//! fast path (no fallback) and skip at least one clean color's spans;
//! structural batches (inserts/deletes) must fall back, recompile the
//! plan against the new pattern, and still match bit-for-bit. A proptest
//! sweep over random delta batches rides at the bottom.

use std::collections::BTreeSet;

use proptest::prelude::*;

use spdistal_repro::ir::Distribution;
use spdistal_repro::sparse::{
    convert, dense_matrix, dense_vector, generate, CooTensor, LevelFormat, SpTensor,
};
use spdistal_repro::spdistal::prelude::*;

const PIECES: usize = 4;
const WIDTH: usize = 6;
const POLICIES: [SplitPolicy; 2] = [SplitPolicy::Off, SplitPolicy::Spans(3)];

fn machine() -> Machine {
    Machine::grid1d(PIECES, MachineProfile::lassen_cpu())
}

fn bits(p: &CompiledProgram, k: usize) -> Vec<u64> {
    p.value(k)
        .unwrap()
        .as_tensor()
        .unwrap()
        .vals()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Value-only deltas over the lexicographically first stored coordinates —
/// confined to low rows, so under a 4-piece row distribution at least one
/// color stays clean.
fn overwrite_deltas(t: &SpTensor, k: usize) -> Vec<CoordDelta> {
    t.to_coo()
        .into_iter()
        .take(k)
        .map(|(c, v)| CoordDelta::overwrite(c, v * 1.5 + 0.25))
        .collect()
}

/// Structural deletes of the lexicographically last stored coordinates.
fn delete_deltas(t: &SpTensor, k: usize) -> Vec<CoordDelta> {
    let coo = t.to_coo();
    coo.iter()
        .rev()
        .take(k)
        .map(|(c, _)| CoordDelta::delete(c.clone()))
        .collect()
}

/// Structural inserts at the first `k` absent coordinates (odometer scan).
fn insert_deltas(t: &SpTensor, k: usize) -> Vec<CoordDelta> {
    let present: BTreeSet<Vec<i64>> = t.to_coo().into_iter().map(|(c, _)| c).collect();
    let dims = t.dims().to_vec();
    let mut out = Vec::new();
    let mut coord = vec![0i64; dims.len()];
    'scan: while out.len() < k {
        if !present.contains(&coord) {
            out.push(CoordDelta::insert(coord.clone(), 0.75 + out.len() as f64));
        }
        let mut d = dims.len();
        loop {
            if d == 0 {
                break 'scan;
            }
            d -= 1;
            coord[d] += 1;
            if (coord[d] as usize) < dims[d] {
                break;
            }
            coord[d] = 0;
        }
    }
    out
}

/// The four batch shapes every pair is swept through. The bool marks
/// value-only batches that must take the fast path.
fn delta_mixes(t: &SpTensor) -> Vec<(&'static str, Vec<CoordDelta>, bool)> {
    let mut mixed = overwrite_deltas(t, 1);
    mixed.extend(insert_deltas(t, 1));
    mixed.extend(delete_deltas(t, 1));
    vec![
        ("overwrite", overwrite_deltas(t, 3), true),
        ("insert", insert_deltas(t, 2), false),
        ("delete", delete_deltas(t, 2), false),
        ("mixed", mixed, false),
    ]
}

/// Sweep one `(kernel, format)` pair: for each policy × delta mix, run →
/// update → run_incremental, then compare bit-for-bit against a fresh
/// program built over the post-delta data. `also_update` names tensors
/// that must receive the same deltas as the driver (SDDMM's output shares
/// the driver's pattern).
fn check_pair(
    label: &str,
    build: &dyn Fn(SpTensor, SplitPolicy) -> CompiledProgram,
    b: &SpTensor,
    also_update: &[&str],
) {
    for policy in POLICIES {
        for (mix, deltas, value_only) in delta_mixes(b) {
            let tag = format!("{label} [{policy:?}, {mix}]");
            let mut p = build(b.clone(), policy);
            p.run().unwrap();
            let rep = p.update_batch("B", &deltas).unwrap();
            assert_eq!(rep.structural, !value_only, "{tag}: structure flag");
            if !value_only {
                for name in also_update {
                    p.update_batch(name, &deltas).unwrap();
                }
            }
            p.run_incremental().unwrap();
            let stats = p.last_incremental(0).unwrap().clone();
            if value_only {
                assert!(
                    !stats.fallback,
                    "{tag}: unexpected fallback: {}",
                    stats.reason
                );
                assert!(stats.spans_skipped > 0, "{tag}: no spans skipped");
            } else {
                assert!(stats.fallback, "{tag}: structural batch must fall back");
            }
            let b2 = p.context().tensor("B").unwrap().data.clone();
            let mut full = build(b2, policy);
            full.run().unwrap();
            assert_eq!(bits(&p, 0), bits(&full, 0), "{tag}: bits diverged");
        }
    }
}

/// The three blessed matrix layouts of `base` (built in CSR).
fn matrix_formats(base: &SpTensor) -> Vec<(&'static str, Format, SpTensor)> {
    vec![
        ("csr", Format::blocked_csr(), convert::to_csr(base)),
        ("dcsr", Format::blocked_dcsr(), convert::to_dcsr(base)),
        ("coo", Format::blocked_coo(), convert::to_coo_format(base)),
    ]
}

fn matrix_base() -> SpTensor {
    generate::uniform(48, 40, 320, 11)
}

#[test]
fn spmv_incremental_identity_all_formats() {
    let base = matrix_base();
    let c = generate::dense_vec(base.dims()[1], 7);
    for (fname, fmt, t) in matrix_formats(&base) {
        let c = c.clone();
        let build = move |b: SpTensor, policy: SplitPolicy| {
            let n = b.dims()[0];
            Program::on(machine())
                .split_policy(policy)
                .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
                .tensor("B", fmt.clone(), b)
                .tensor("c", Format::replicated_dense_vec(), dense_vector(c.clone()))
                .stmt("a(i) = B(i,j) * c(j)")
                .schedule(ScheduleSpec::outer_dim())
                .build()
                .unwrap()
        };
        check_pair(&format!("SpMv/{fname}"), &build, &t, &[]);
    }
}

#[test]
fn spmm_incremental_identity_all_formats() {
    let base = matrix_base();
    let (rows, cols) = (base.dims()[0], base.dims()[1]);
    let c = generate::dense_buffer(cols, WIDTH, 17);
    for (fname, fmt, t) in matrix_formats(&base) {
        let c = c.clone();
        let build = move |b: SpTensor, policy: SplitPolicy| {
            Program::on(machine())
                .split_policy(policy)
                .tensor(
                    "A",
                    Format::blocked_dense_matrix(),
                    dense_matrix(rows, WIDTH, vec![0.0; rows * WIDTH]),
                )
                .tensor("B", fmt.clone(), b)
                .tensor(
                    "C",
                    Format::replicated_dense_matrix(),
                    dense_matrix(cols, WIDTH, c.clone()),
                )
                .stmt("A(i,j) = B(i,k) * C(k,j)")
                .schedule(ScheduleSpec::outer_dim())
                .build()
                .unwrap()
        };
        check_pair(&format!("SpMm/{fname}"), &build, &t, &[]);
    }
}

#[test]
fn sddmm_incremental_identity_all_formats() {
    let base = matrix_base();
    let (rows, cols) = (base.dims()[0], base.dims()[1]);
    let c = generate::dense_buffer(rows, WIDTH, 19);
    let d = generate::dense_buffer(WIDTH, cols, 23);
    for (fname, fmt, t) in matrix_formats(&base) {
        let (c, d) = (c.clone(), d.clone());
        let build = move |b: SpTensor, policy: SplitPolicy| {
            Program::on(machine())
                .split_policy(policy)
                // The output shares the driver's pattern (values ignored).
                .tensor("A", fmt.clone(), b.clone())
                .tensor("B", fmt.clone(), b)
                .tensor(
                    "C",
                    Format::staged_dense_matrix(),
                    dense_matrix(rows, WIDTH, c.clone()),
                )
                .tensor(
                    "D",
                    Format::staged_dense_matrix(),
                    dense_matrix(WIDTH, cols, d.clone()),
                )
                .stmt("A(i,j) = B(i,j) * C(i,k) * D(k,j)")
                .schedule(ScheduleSpec::outer_dim())
                .build()
                .unwrap()
        };
        // Structural batches must land on A too: its pattern mirrors B's.
        check_pair(&format!("Sddmm/{fname}"), &build, &t, &["A"]);
    }
}

#[test]
fn spmttkrp_incremental_identity_all_formats() {
    let base = generate::tensor3_uniform([20, 18, 16], 600, 31);
    let dcsf3 = Format::new(
        vec![LevelFormat::Compressed; 3],
        Distribution::new("xyz", "x").unwrap(),
    );
    let formats: Vec<(&'static str, Format, SpTensor)> = vec![
        ("csf3", Format::blocked_csf3(), base.clone()),
        (
            "dcsf3",
            dcsf3,
            convert::with_formats(&base, &[LevelFormat::Compressed; 3]),
        ),
        (
            "coo3",
            Format::blocked_coo3(),
            convert::to_coo_format(&base),
        ),
    ];
    let (jd, kd) = (base.dims()[1], base.dims()[2]);
    let rows = base.dims()[0];
    let c = generate::dense_buffer(jd, WIDTH, 41);
    let d = generate::dense_buffer(kd, WIDTH, 43);
    for (fname, fmt, t) in formats {
        let (c, d) = (c.clone(), d.clone());
        let build = move |b: SpTensor, policy: SplitPolicy| {
            Program::on(machine())
                .split_policy(policy)
                .tensor("B", fmt.clone(), b)
                .tensor(
                    "A",
                    Format::blocked_dense_matrix(),
                    dense_matrix(rows, WIDTH, vec![0.0; rows * WIDTH]),
                )
                .tensor(
                    "C",
                    Format::replicated_dense_matrix(),
                    dense_matrix(jd, WIDTH, c.clone()),
                )
                .tensor(
                    "D",
                    Format::replicated_dense_matrix(),
                    dense_matrix(kd, WIDTH, d.clone()),
                )
                .stmt("A(i,l) = B(i,j,k) * C(j,l) * D(k,l)")
                .schedule(ScheduleSpec::outer_dim())
                .build()
                .unwrap()
        };
        check_pair(&format!("SpMttkrp/{fname}"), &build, &t, &[]);
    }
}

/// Strategy: a small CSR matrix plus an arbitrary delta batch over its
/// coordinate space (ops and coordinates unconstrained beyond bounds).
fn arb_matrix_and_deltas() -> impl Strategy<Value = (SpTensor, Vec<CoordDelta>)> {
    (4usize..24, 4usize..24, 1usize..60).prop_flat_map(|(rows, cols, n)| {
        let tensor = proptest::collection::vec(
            (0..rows as i64, 0..cols as i64, -5.0f64..5.0),
            n.min(rows * cols),
        )
        .prop_map(move |triplets| {
            let mut coo = CooTensor::new(vec![rows, cols]);
            for (i, j, v) in triplets {
                coo.push(&[i, j], if v == 0.0 { 1.0 } else { v });
            }
            coo.build(&[LevelFormat::Dense, LevelFormat::Compressed])
        });
        let deltas = proptest::collection::vec(
            (0..rows as i64, 0..cols as i64, -3.0f64..3.0, 0u32..3),
            0..12,
        )
        .prop_map(|raw| {
            raw.into_iter()
                .map(|(i, j, v, op)| match op {
                    0 => CoordDelta::insert(vec![i, j], v),
                    1 => CoordDelta::overwrite(vec![i, j], v),
                    _ => CoordDelta::delete(vec![i, j]),
                })
                .collect::<Vec<_>>()
        });
        (tensor, deltas)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random delta batches over random patterns: `run_incremental` stays
    /// bit-identical to a fresh full recompute whether the batch turns out
    /// value-only (fast path) or structural (fallback + recompile),
    /// including batches that empty the matrix or insert into empty rows.
    #[test]
    fn incremental_matches_full_on_random_delta_batches(
        (b, deltas) in arb_matrix_and_deltas()
    ) {
        let n = b.dims()[0];
        let cols = b.dims()[1];
        let c = generate::dense_vec(cols, 3);
        let build = |data: SpTensor| {
            Program::on(machine())
                .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
                .tensor("B", Format::blocked_csr(), data)
                .tensor("c", Format::replicated_dense_vec(), dense_vector(c.clone()))
                .stmt("a(i) = B(i,j) * c(j)")
                .schedule(ScheduleSpec::outer_dim())
                .build()
                .unwrap()
        };
        let mut p = build(b);
        p.run().unwrap();
        p.update_batch("B", &deltas).unwrap();
        p.run_incremental().unwrap();
        let b2 = p.context().tensor("B").unwrap().data.clone();
        let mut full = build(b2);
        full.run().unwrap();
        prop_assert_eq!(bits(&p, 0), bits(&full, 0));
    }
}
