//! The parallel executor contract: for every evaluation kernel and both
//! schedule families, `ExecMode::Parallel(n)` produces **bit-identical**
//! `OutputValue`s to `ExecMode::Serial` — conflicting point tasks are
//! serialized in color order by the dependence graph, reductions combine
//! in color order, and disjoint writers touch disjoint elements.
//!
//! The same contract covers **intra-color splitting**: chunking a color's
//! leaf kernel into spans (`SplitPolicy`) must be invisible in the output
//! and in simulated time, under Serial and Parallel execution alike —
//! spans write disjoint output elements and per-color op counts are exact
//! span sums.

use spdistal_repro::sparse::{dense_matrix, dense_vector, generate};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_nonzero, schedule_outer_dim};

const WIDTH: usize = 8;

fn assert_bit_identical(kernel: &str, serial: &OutputValue, parallel: &OutputValue) {
    let (a, b) = match (serial, parallel) {
        (OutputValue::Tensor(x), OutputValue::Tensor(y)) => {
            assert_eq!(x.dims(), y.dims(), "{kernel}: dims");
            assert_eq!(x.levels(), y.levels(), "{kernel}: structure");
            (x.vals(), y.vals())
        }
        (OutputValue::Dense(x), OutputValue::Dense(y)) => (&x[..], &y[..]),
        _ => panic!("{kernel}: output kinds differ between modes"),
    };
    assert_eq!(a.len(), b.len(), "{kernel}: value count");
    for (i, (u, v)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            u.to_bits(),
            v.to_bits(),
            "{kernel}: value {i} differs ({u} vs {v})"
        );
    }
}

/// Build a fresh context, run one kernel under `mode` and `split`, return
/// the result. (`SplitPolicy::Auto` is the context default: parallel runs
/// split their dominant colors on their own.)
fn run_kernel(kernel: &str, mode: ExecMode, nodes: usize, split: SplitPolicy) -> ExecResult {
    let mut ctx = Context::new(Machine::grid1d(nodes, MachineProfile::lassen_cpu()))
        .with_exec_mode(mode)
        .with_split_policy(split);
    let (stmt, sched) = match kernel {
        "spmv_row" | "spmv_nonzero" => {
            let b = generate::rmat_default(8, 3000, 21);
            let n = b.dims()[0];
            let nonzero = kernel == "spmv_nonzero";
            let fmt = if nonzero {
                Format::nonzero_csr()
            } else {
                Format::blocked_csr()
            };
            ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
                .unwrap();
            ctx.add_tensor("B", b, fmt).unwrap();
            ctx.add_tensor(
                "c",
                dense_vector(generate::dense_vec(n, 22)),
                Format::replicated_dense_vec(),
            )
            .unwrap();
            let [i, j] = ctx.fresh_vars(["i", "j"]);
            let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
            let sched = if nonzero {
                schedule_nonzero(&mut ctx, &stmt, "B", 2, nodes, ParallelUnit::CpuThread).unwrap()
            } else {
                schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread)
            };
            (stmt, sched)
        }
        "spmm" => {
            let b = generate::uniform(200, 160, 2500, 23);
            ctx.add_tensor(
                "A",
                dense_matrix(200, WIDTH, vec![0.0; 200 * WIDTH]),
                Format::blocked_dense_matrix(),
            )
            .unwrap();
            ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
            ctx.add_tensor(
                "C",
                dense_matrix(160, WIDTH, generate::dense_buffer(160, WIDTH, 24)),
                Format::replicated_dense_matrix(),
            )
            .unwrap();
            let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
            let stmt = assign("A", &[i, j], access("B", &[i, k]) * access("C", &[k, j]));
            let sched = schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread);
            (stmt, sched)
        }
        "spadd3" => {
            let b = generate::uniform(150, 140, 1800, 25);
            let c = generate::shift_last_dim(&b, 3);
            let d = generate::shift_last_dim(&b, 7);
            for (name, t) in [("B", &b), ("C", &c), ("D", &d)] {
                ctx.add_tensor(name, t.clone(), Format::blocked_csr())
                    .unwrap();
            }
            ctx.add_tensor(
                "A",
                spdistal_repro::spdistal::plan::empty_csr(150, 140),
                Format::blocked_csr(),
            )
            .unwrap();
            let [i, j] = ctx.fresh_vars(["i", "j"]);
            let stmt = assign(
                "A",
                &[i, j],
                access("B", &[i, j]) + access("C", &[i, j]) + access("D", &[i, j]),
            );
            let sched = schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread);
            (stmt, sched)
        }
        "sddmm" => {
            let b = generate::rmat_default(7, 1500, 27);
            let (n, m) = (b.dims()[0], b.dims()[1]);
            ctx.add_tensor("A", b.clone(), Format::blocked_csr())
                .unwrap();
            ctx.add_tensor("B", b, Format::nonzero_csr()).unwrap();
            ctx.add_tensor(
                "C",
                dense_matrix(n, WIDTH, generate::dense_buffer(n, WIDTH, 28)),
                Format::staged_dense_matrix(),
            )
            .unwrap();
            ctx.add_tensor(
                "D",
                dense_matrix(WIDTH, m, generate::dense_buffer(WIDTH, m, 29)),
                Format::staged_dense_matrix(),
            )
            .unwrap();
            let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
            let stmt = assign(
                "A",
                &[i, j],
                access("B", &[i, j]) * access("C", &[i, k]) * access("D", &[k, j]),
            );
            let sched =
                schedule_nonzero(&mut ctx, &stmt, "B", 2, nodes, ParallelUnit::CpuThread).unwrap();
            (stmt, sched)
        }
        "spttv_row" | "spttv_nonzero" => {
            let b = generate::tensor3_skewed([40, 30, 35], 2500, 0.9, 31);
            let nonzero = kernel == "spttv_nonzero";
            let fmt = if nonzero {
                Format::nonzero_csf3()
            } else {
                Format::blocked_csf3()
            };
            ctx.add_tensor("B", b.clone(), fmt).unwrap();
            let fibers = spdistal_repro::spdistal::kernels::tensor3::spttv_output(
                &b,
                vec![0.0; spdistal_repro::spdistal::level_funcs::entry_counts(&b)[1] as usize],
            );
            ctx.add_tensor("A", fibers, Format::blocked_csr()).unwrap();
            ctx.add_tensor(
                "c",
                dense_vector(generate::dense_vec(35, 32)),
                Format::replicated_dense_vec(),
            )
            .unwrap();
            let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
            let stmt = assign("A", &[i, j], access("B", &[i, j, k]) * access("c", &[k]));
            let sched = if nonzero {
                schedule_nonzero(&mut ctx, &stmt, "B", 3, nodes, ParallelUnit::CpuThread).unwrap()
            } else {
                schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread)
            };
            (stmt, sched)
        }
        "spmttkrp" => {
            let b = generate::tensor3_uniform([40, 35, 45], 2200, 33);
            ctx.add_tensor("B", b, Format::blocked_csf3()).unwrap();
            ctx.add_tensor(
                "A",
                dense_matrix(40, WIDTH, vec![0.0; 40 * WIDTH]),
                Format::blocked_dense_matrix(),
            )
            .unwrap();
            ctx.add_tensor(
                "C",
                dense_matrix(35, WIDTH, generate::dense_buffer(35, WIDTH, 34)),
                Format::replicated_dense_matrix(),
            )
            .unwrap();
            ctx.add_tensor(
                "D",
                dense_matrix(45, WIDTH, generate::dense_buffer(45, WIDTH, 35)),
                Format::replicated_dense_matrix(),
            )
            .unwrap();
            let [i, l, j, k] = ctx.fresh_vars(["i", "l", "j", "k"]);
            let stmt = assign(
                "A",
                &[i, l],
                access("B", &[i, j, k]) * access("C", &[j, l]) * access("D", &[k, l]),
            );
            let sched = schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread);
            (stmt, sched)
        }
        other => panic!("unknown kernel {other}"),
    };
    ctx.compile_and_run(&stmt, &sched).unwrap()
}

const KERNELS: [&str; 8] = [
    "spmv_row",
    "spmv_nonzero",
    "spmm",
    "spadd3",
    "sddmm",
    "spttv_row",
    "spttv_nonzero",
    "spmttkrp",
];

#[test]
fn parallel_is_bit_identical_to_serial_on_every_kernel() {
    for kernel in KERNELS {
        let serial = run_kernel(kernel, ExecMode::Serial, 6, SplitPolicy::Auto);
        for threads in [2usize, 4, 8] {
            // Auto is the default: parallel runs split on their own.
            let parallel = run_kernel(kernel, ExecMode::Parallel(threads), 6, SplitPolicy::Auto);
            assert_bit_identical(kernel, &serial.output, &parallel.output);
            // Simulated time is the cost model and must not depend on the
            // real executor at all.
            assert_eq!(
                serial.time, parallel.time,
                "{kernel}: simulated time must not depend on ExecMode"
            );
        }
    }
}

/// Splitting a color's leaf kernel into spans is invisible: forcing spans
/// (`SplitPolicy::Spans`) under Serial and Parallel execution reproduces
/// the unsplit serial output bit-for-bit, and simulated time stays put.
#[test]
fn split_is_bit_identical_to_unsplit_on_every_kernel() {
    for kernel in KERNELS {
        let reference = run_kernel(kernel, ExecMode::Serial, 6, SplitPolicy::Off);
        for (mode, split) in [
            (ExecMode::Serial, SplitPolicy::Spans(3)),
            (ExecMode::Parallel(2), SplitPolicy::Spans(5)),
            (ExecMode::Parallel(4), SplitPolicy::Spans(3)),
        ] {
            let split_run = run_kernel(kernel, mode, 6, split);
            assert_bit_identical(kernel, &reference.output, &split_run.output);
            assert_eq!(
                reference.time, split_run.time,
                "{kernel}: simulated time must not depend on splitting"
            );
            assert!(
                split_run.sched.spans > split_run.sched.tasks,
                "{kernel}: forcing spans must actually split some color \
                 ({} spans over {} tasks)",
                split_run.sched.spans,
                split_run.sched.tasks
            );
        }
    }
}

#[test]
fn executor_report_reflects_launch_shape() {
    let nodes = 6;
    let serial = run_kernel("spmm", ExecMode::Serial, nodes, SplitPolicy::Auto);
    assert_eq!(serial.sched.tasks, nodes);
    assert_eq!(serial.sched.threads, 1);
    assert_eq!(serial.sched.steals, 0);
    // Serial + Auto never splits: one span per color.
    assert_eq!(serial.sched.spans, nodes);
    assert_eq!(serial.sched.split_tasks, 0);
    assert!(serial.wall_time > 0.0);
    assert!(serial.sched.critical_task_seconds > 0.0);
    assert!(serial.sched.critical_task_seconds <= serial.sched.busy_seconds);

    let parallel = run_kernel("spmm", ExecMode::Parallel(3), nodes, SplitPolicy::Auto);
    assert_eq!(parallel.sched.tasks, nodes);
    assert_eq!(parallel.sched.threads, 3);
    assert!(parallel.wall_time > 0.0);
    // Row-blocked SpMM point tasks are independent: no dependence edges.
    assert_eq!(parallel.sched.edges, 0);
    assert_eq!(parallel.sched.critical_path, 1);
    // Auto under parallel splits colors into spans the pool can steal.
    assert!(parallel.sched.spans >= parallel.sched.tasks);
}

#[test]
fn run_with_mode_restores_previous_mode() {
    let mut ctx = Context::new(Machine::grid1d(4, MachineProfile::lassen_cpu()));
    let b = generate::banded(256, 5, 41);
    ctx.add_tensor(
        "a",
        dense_vector(vec![0.0; 256]),
        Format::blocked_dense_vec(),
    )
    .unwrap();
    ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
    ctx.add_tensor(
        "c",
        dense_vector(generate::dense_vec(256, 42)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
    let sched = schedule_outer_dim(&mut ctx, &stmt, 4, ParallelUnit::CpuThread);
    let plan = ctx.compile(&stmt, &sched).unwrap();
    assert_eq!(ctx.exec_mode(), ExecMode::Serial);
    let r = ctx.run_with_mode(&plan, ExecMode::Parallel(2)).unwrap();
    assert_eq!(r.sched.threads, 2);
    assert_eq!(ctx.exec_mode(), ExecMode::Serial);
}
