//! The specialized-kernel bit-identity bar: for every blessed
//! `(kernel, format)` pair in [`specialized::TABLE`], the monomorphized
//! kernel must produce **bit-identical** output values and **exactly
//! equal** op counts to the generic partitioned walker — across driver
//! formats, partition kinds (outer-dim row blocks and mid-row non-zero
//! position splits), every `SplitPolicy`, and both uniform and skewed
//! (R-MAT / Zipf) inputs.
//!
//! The sweep drives the leaf functions directly, span by span, exactly as
//! `PreparedPlan::run_point` does — the crispest form of the contract,
//! with no plan-level machinery between the two implementations. Random
//! pattern coverage rides on a proptest sweep at the bottom.

use proptest::prelude::*;

use spdistal_repro::sparse::{convert, generate, CooTensor, LevelFormat, SpTensor};
use spdistal_repro::spdistal::kernels::specialized::{self, SpecializedKernel};
use spdistal_repro::spdistal::kernels::split::color_weight;
use spdistal_repro::spdistal::kernels::{
    color_spans, matrix, tensor3, KernelSpan, LeafKernel, OutVals,
};
use spdistal_repro::spdistal::level_funcs::{
    equal_coord_bounds, nonzero_partition, partition_tensor, universe_partition, TensorPartition,
};
use spdistal_repro::spdistal::prelude::{ExecMode, SplitPolicy};

const POLICIES: [SplitPolicy; 3] = [
    SplitPolicy::Off,
    SplitPolicy::Spans(3),
    SplitPolicy::Spans(5),
];

type LeafRun<'a> =
    dyn Fn(&SpTensor, &TensorPartition, usize, Option<&KernelSpan>, &OutVals) -> f64 + 'a;

/// Both partition kinds real schedules produce for driver `t`: outer-dim
/// coordinate blocks on level 0 and an equal non-zero position split of
/// the leaf (the one that cuts mid-row, exercising the partial-row path).
fn both_partitions(t: &SpTensor) -> Vec<(&'static str, TensorPartition)> {
    let leaf = t.order() - 1;
    vec![
        (
            "outer-dim",
            partition_tensor(
                t,
                0,
                universe_partition(t, 0, &equal_coord_bounds(t.dims()[0], 4)),
            ),
        ),
        (
            "non-zero",
            partition_tensor(t, leaf, nonzero_partition(t, leaf, 3)),
        ),
    ]
}

/// Run generic and specialized span-by-span over every color of every
/// partition under every split policy, asserting bitwise-equal outputs
/// and exactly equal op counts.
fn assert_leaf_identical(
    t: &SpTensor,
    kernel: &LeafKernel,
    out_len: usize,
    generic: &LeafRun,
    special: &LeafRun,
    label: &str,
) {
    for (pname, part) in &both_partitions(t) {
        for policy in POLICIES {
            let colors = part.num_colors();
            let total: u64 = (0..colors).map(|c| color_weight(part, c)).sum();
            let mut g = vec![0.0; out_len];
            let mut s = vec![0.0; out_len];
            let (mut gops, mut sops) = (0.0, 0.0);
            let mut spans_seen = 0usize;
            for color in 0..colors {
                for span in color_spans(t, part, kernel, color, policy, ExecMode::Serial, total) {
                    gops += generic(t, part, color, span.as_ref(), &OutVals::new(&mut g));
                    sops += special(t, part, color, span.as_ref(), &OutVals::new(&mut s));
                    spans_seen += 1;
                }
            }
            assert!(spans_seen >= colors, "{label}: no spans ran");
            assert_eq!(
                gops.to_bits(),
                sops.to_bits(),
                "{label} [{pname}, {policy:?}]: op counts differ ({gops} vs {sops})"
            );
            for (i, (a, b)) in g.iter().zip(&s).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{label} [{pname}, {policy:?}]: value {i} differs ({a} vs {b})"
                );
            }
        }
    }
}

/// The three blessed matrix layouts of `base` (built in CSR).
fn matrix_formats(base: &SpTensor) -> Vec<(&'static str, SpTensor)> {
    vec![
        ("csr", convert::to_csr(base)),
        ("dcsr", convert::to_dcsr(base)),
        ("coo", convert::to_coo_format(base)),
    ]
}

/// Look up the blessed entry for `kernel` on `t` — it must exist and its
/// variant extractor must match, or the table itself regressed.
fn blessed(kernel: &LeafKernel, t: &SpTensor, label: &str) -> SpecializedKernel {
    let sig = specialized::storage_signature(t);
    specialized::lookup(kernel, &sig).unwrap_or_else(|| {
        panic!(
            "{label}: ({}, {sig}) not blessed",
            specialized::kernel_name(kernel)
        )
    })
}

fn matrix_inputs() -> Vec<(&'static str, SpTensor)> {
    vec![
        ("uniform", generate::uniform(48, 40, 320, 11)),
        ("rmat", generate::rmat_clustered(6, 520, 0.57, 12)),
        ("banded", generate::banded(40, 3, 13)),
    ]
}

#[test]
fn spmv_specialized_matches_walker_all_formats() {
    for (iname, base) in matrix_inputs() {
        let c = generate::dense_vec(base.dims()[1], 7);
        for (fname, t) in matrix_formats(&base) {
            let SpecializedKernel::SpMv(f) = blessed(&LeafKernel::SpMv, &t, fname) else {
                panic!("SpMv {fname}: wrong table variant");
            };
            assert_leaf_identical(
                &t,
                &LeafKernel::SpMv,
                t.dims()[0],
                &|t, p, col, sp, o| matrix::spmv_color(t, p, col, sp, &c, o),
                &|t, p, col, sp, o| f(t, p, col, sp, &c, o),
                &format!("SpMv {iname}/{fname}"),
            );
        }
    }
}

#[test]
fn spmm_specialized_matches_walker_all_formats() {
    let jdim = 6;
    for (iname, base) in matrix_inputs() {
        let c = generate::dense_vec(base.dims()[1] * jdim, 17);
        for (fname, t) in matrix_formats(&base) {
            let SpecializedKernel::SpMm(f) = blessed(&LeafKernel::SpMm { jdim }, &t, fname) else {
                panic!("SpMm {fname}: wrong table variant");
            };
            assert_leaf_identical(
                &t,
                &LeafKernel::SpMm { jdim },
                t.dims()[0] * jdim,
                &|t, p, col, sp, o| matrix::spmm_color(t, p, col, sp, &c, jdim, o),
                &|t, p, col, sp, o| f(t, p, col, sp, &c, jdim, o),
                &format!("SpMm {iname}/{fname}"),
            );
        }
    }
}

#[test]
fn sddmm_specialized_matches_walker_all_formats() {
    let kdim = 5;
    for (iname, base) in matrix_inputs() {
        let (rows, cols) = (base.dims()[0], base.dims()[1]);
        let c = generate::dense_vec(rows * kdim, 19);
        let d = generate::dense_vec(kdim * cols, 23);
        for (fname, t) in matrix_formats(&base) {
            let SpecializedKernel::Sddmm(f) = blessed(&LeafKernel::Sddmm { kdim }, &t, fname)
            else {
                panic!("Sddmm {fname}: wrong table variant");
            };
            assert_leaf_identical(
                &t,
                &LeafKernel::Sddmm { kdim },
                t.num_stored(),
                &|t, p, col, sp, o| matrix::sddmm_color(t, p, col, sp, &c, &d, kdim, cols, o),
                &|t, p, col, sp, o| f(t, p, col, sp, &c, &d, kdim, cols, o),
                &format!("Sddmm {iname}/{fname}"),
            );
        }
    }
}

#[test]
fn spmttkrp_specialized_matches_walker_all_formats() {
    let ldim = 5;
    let inputs = vec![
        ("uniform", generate::tensor3_uniform([20, 18, 16], 600, 31)),
        (
            "skewed",
            generate::tensor3_skewed([24, 16, 12], 700, 1.3, 37),
        ),
    ];
    for (iname, base) in inputs {
        let c = generate::dense_vec(base.dims()[1] * ldim, 41);
        let d = generate::dense_vec(base.dims()[2] * ldim, 43);
        let formats = vec![
            ("csf", base.clone()),
            (
                "dcsf",
                convert::with_formats(&base, &[LevelFormat::Compressed; 3]),
            ),
            ("coo3", convert::to_coo_format(&base)),
        ];
        for (fname, t) in formats {
            let SpecializedKernel::SpMttkrp(f) = blessed(&LeafKernel::SpMttkrp { ldim }, &t, fname)
            else {
                panic!("SpMttkrp {fname}: wrong table variant");
            };
            assert_leaf_identical(
                &t,
                &LeafKernel::SpMttkrp { ldim },
                t.dims()[0] * ldim,
                &|t, p, col, sp, o| tensor3::spmttkrp_color(t, p, col, sp, &c, &d, ldim, o),
                &|t, p, col, sp, o| f(t, p, col, sp, &c, &d, ldim, o),
                &format!("SpMttkrp {iname}/{fname}"),
            );
        }
    }
}

/// Strategy: an arbitrary small sparse matrix in CSR (mirrors
/// `tests/properties.rs`).
fn arb_matrix() -> impl Strategy<Value = SpTensor> {
    (2usize..32, 2usize..32, 0usize..100).prop_flat_map(|(rows, cols, n)| {
        proptest::collection::vec(
            (0..rows as i64, 0..cols as i64, -5.0f64..5.0),
            n.min(rows * cols),
        )
        .prop_map(move |triplets| {
            let mut coo = CooTensor::new(vec![rows, cols]);
            for (i, j, v) in triplets {
                coo.push(&[i, j], if v == 0.0 { 1.0 } else { v });
            }
            coo.build(&[LevelFormat::Dense, LevelFormat::Compressed])
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random-pattern sweep of all three matrix kernels across all three
    /// blessed layouts: specialized output stays bit-identical to the
    /// walker for arbitrary sparsity patterns, including empty matrices,
    /// empty rows, and single-entry rows.
    #[test]
    fn specialized_matches_walker_on_random_matrices(base in arb_matrix()) {
        let (rows, cols) = (base.dims()[0], base.dims()[1]);
        let jdim = 4;
        let kdim = 3;
        let cv = generate::dense_vec(cols, 3);
        let cm = generate::dense_vec(cols * jdim, 5);
        let cs = generate::dense_vec(rows * kdim, 7);
        let ds = generate::dense_vec(kdim * cols, 9);
        for (fname, t) in matrix_formats(&base) {
            let SpecializedKernel::SpMv(fv) = blessed(&LeafKernel::SpMv, &t, fname) else {
                panic!("SpMv {fname}: wrong table variant");
            };
            assert_leaf_identical(
                &t, &LeafKernel::SpMv, rows,
                &|t, p, col, sp, o| matrix::spmv_color(t, p, col, sp, &cv, o),
                &|t, p, col, sp, o| fv(t, p, col, sp, &cv, o),
                &format!("SpMv random/{fname}"),
            );
            let SpecializedKernel::SpMm(fm) = blessed(&LeafKernel::SpMm { jdim }, &t, fname) else {
                panic!("SpMm {fname}: wrong table variant");
            };
            assert_leaf_identical(
                &t, &LeafKernel::SpMm { jdim }, rows * jdim,
                &|t, p, col, sp, o| matrix::spmm_color(t, p, col, sp, &cm, jdim, o),
                &|t, p, col, sp, o| fm(t, p, col, sp, &cm, jdim, o),
                &format!("SpMm random/{fname}"),
            );
            let SpecializedKernel::Sddmm(fs) = blessed(&LeafKernel::Sddmm { kdim }, &t, fname) else {
                panic!("Sddmm {fname}: wrong table variant");
            };
            assert_leaf_identical(
                &t, &LeafKernel::Sddmm { kdim }, t.num_stored(),
                &|t, p, col, sp, o| matrix::sddmm_color(t, p, col, sp, &cs, &ds, kdim, cols, o),
                &|t, p, col, sp, o| fs(t, p, col, sp, &cs, &ds, kdim, cols, o),
                &format!("Sddmm random/{fname}"),
            );
        }
    }
}
