//! Property-based tests (proptest) over the core invariants:
//!
//! * format round-trips preserve sparse tensors exactly;
//! * the Table I partition derivations cover every stored entry exactly
//!   once at the leaf level for disjoint initial partitions;
//! * image/preimage adjointness on tensor pos/crd pairs;
//! * the compiled distributed SpMV equals the serial oracle for arbitrary
//!   sparse matrices, schedules (row/non-zero) and machine sizes;
//! * the loop-IR interpreter agrees with the specialized kernels.

use proptest::prelude::*;

use spdistal_repro::ir;
use spdistal_repro::runtime::{image_rects, preimage_rects, Partition};
use spdistal_repro::sparse::{
    convert, dense_vector, reference, CooTensor, Level, LevelFormat, SpTensor,
};
use spdistal_repro::spdistal::level_funcs::{
    equal_coord_bounds, nonzero_partition, partition_tensor, universe_partition,
};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_nonzero, schedule_outer_dim};

/// Strategy: an arbitrary small sparse matrix in CSR.
fn arb_matrix() -> impl Strategy<Value = SpTensor> {
    (2usize..40, 2usize..40, 0usize..120).prop_flat_map(|(rows, cols, n)| {
        proptest::collection::vec(
            (0..rows as i64, 0..cols as i64, -5.0f64..5.0),
            n.min(rows * cols),
        )
        .prop_map(move |triplets| {
            let mut coo = CooTensor::new(vec![rows, cols]);
            for (i, j, v) in triplets {
                // Avoid exact-zero stored values for pattern stability.
                coo.push(&[i, j], if v == 0.0 { 1.0 } else { v });
            }
            coo.build(&[LevelFormat::Dense, LevelFormat::Compressed])
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn format_roundtrips_preserve_tensor(m in arb_matrix()) {
        let csc = convert::to_csc(&m);
        prop_assert_eq!(&convert::to_csc(&csc), &m);
        let dcsr = convert::to_dcsr(&m);
        prop_assert_eq!(dcsr.to_coo(), m.to_coo());
        let back = convert::to_csr(&convert::with_formats(
            &m,
            &[LevelFormat::Compressed, LevelFormat::Compressed],
        ));
        prop_assert_eq!(&back, &m);
    }

    #[test]
    fn partitions_cover_leaves_exactly_once(
        m in arb_matrix(),
        colors in 1usize..7,
        nonzero in proptest::bool::ANY,
    ) {
        let init = if nonzero {
            nonzero_partition(&m, 1, colors)
        } else {
            universe_partition(&m, 0, &equal_coord_bounds(m.dims()[0], colors))
        };
        let level = if nonzero { 1 } else { 0 };
        let tp = partition_tensor(&m, level, init);
        // Leaf (vals) partition is disjoint & complete for both initial
        // partitions: each stored value is computed exactly once.
        prop_assert!(tp.vals.is_disjoint());
        prop_assert!(tp.vals.is_complete());
        // The crd level is complete; the row level must cover every row
        // that has stored children (empty rows need no color under a
        // non-zero partition).
        prop_assert!(tp.entries[1].is_complete());
        let Level::Compressed { pos, .. } = m.level(1) else { unreachable!() };
        let mut row_union = spdistal_repro::runtime::IntervalSet::new();
        for c in 0..colors {
            row_union = row_union.union(tp.entries[0].subset(c));
        }
        for (row, r) in pos.iter().enumerate() {
            if !r.is_empty() {
                prop_assert!(row_union.contains(row as i64), "row {row} uncovered");
            }
        }
    }

    #[test]
    fn image_preimage_adjoint(m in arb_matrix(), colors in 1usize..6) {
        let Level::Compressed { pos, crd } = m.level(1) else { unreachable!() };
        let p = Partition::equal(pos.len() as u64, colors);
        let img = image_rects(pos, &p, crd.len() as u64);
        let back = preimage_rects(pos, &img);
        for c in 0..colors {
            // Adjointness: rows with children keep their color.
            for i in p.subset(c).iter_points() {
                if !pos[i as usize].is_empty() {
                    prop_assert!(back.subset(c).contains(i));
                }
            }
        }
    }

    #[test]
    fn distributed_spmv_equals_oracle(
        m in arb_matrix(),
        nodes in 1usize..6,
        nonzero in proptest::bool::ANY,
    ) {
        prop_assume!(m.nnz() > 0);
        let n = m.dims()[0];
        let cols = m.dims()[1];
        let c: Vec<f64> = (0..cols).map(|k| (k as f64 * 0.37).sin() + 1.5).collect();
        let expect = reference::spmv(&m, &c);

        let mut ctx = Context::new(Machine::grid1d(nodes, MachineProfile::test_profile()));
        let fmt = if nonzero { Format::nonzero_csr() } else { Format::blocked_csr() };
        ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec()).unwrap();
        ctx.add_tensor("B", m.clone(), fmt).unwrap();
        ctx.add_tensor("c", dense_vector(c.clone()), Format::replicated_dense_vec()).unwrap();
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
        let sched = if nonzero {
            schedule_nonzero(&mut ctx, &stmt, "B", 2, nodes, ParallelUnit::CpuThread).unwrap()
        } else {
            schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread)
        };
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        prop_assert!(reference::approx_eq(
            r.output.as_tensor().unwrap().vals(), &expect, 1e-10));
    }

    #[test]
    fn interpreter_agrees_with_reference_spmv(m in arb_matrix()) {
        let cols = m.dims()[1];
        let c: Vec<f64> = (0..cols).map(|k| 0.5 + k as f64).collect();
        let mut vars = ir::VarCtx::new();
        let [i, j] = vars.fresh_n(["i", "j"]);
        let stmt = ir::Assignment::new(
            ir::Access::new("a", &[i]),
            ir::Expr::access("B", &[i, j]) * ir::Expr::access("c", &[j]),
        );
        let cv = dense_vector(c.clone());
        let out = ir::evaluate(&stmt, &ir::Bindings::new().bind("B", &m).bind("c", &cv)).unwrap();
        let dense = ir::result_to_dense(&out, &[m.dims()[0]]);
        prop_assert!(reference::approx_eq(&dense, &reference::spmv(&m, &c), 1e-10));
    }

    #[test]
    fn spadd3_distributed_equals_oracle(m in arb_matrix(), nodes in 1usize..5) {
        prop_assume!(m.nnz() > 0);
        let c = spdistal_repro::sparse::generate::shift_last_dim(&m, 1);
        let d = spdistal_repro::sparse::generate::shift_last_dim(&m, 2);
        let expect = reference::spadd3(&m, &c, &d);
        let (rows, cols) = (m.dims()[0], m.dims()[1]);
        let mut ctx = Context::new(Machine::grid1d(nodes, MachineProfile::test_profile()));
        for (name, t) in [("B", &m), ("C", &c), ("D", &d)] {
            ctx.add_tensor(name, t.clone(), Format::blocked_csr()).unwrap();
        }
        ctx.add_tensor("A", spdistal_repro::spdistal::plan::empty_csr(rows, cols),
            Format::blocked_csr()).unwrap();
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign("A", &[i, j],
            access("B", &[i, j]) + access("C", &[i, j]) + access("D", &[i, j]));
        let sched = schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread);
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        prop_assert!(reference::tensors_approx_eq(
            r.output.as_tensor().unwrap(), &expect, 1e-10));
    }

    #[test]
    fn tdn_parse_resolve_never_panics(
        dims in "[a-e]{1,3}",
        machine in "~?[a-g]",
    ) {
        let input = format!("T {dims} -> {machine} M");
        if let Ok(stmt) = ir::tdn::parse(&input) {
            let _ = stmt.dist.resolve(dims.len());
        }
    }
}
