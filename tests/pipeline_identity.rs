//! The deferred-execution contract: multi-statement programs executed
//! through a pipelined [`Session`] produce **bit-identical** outputs (and
//! final tensor states) to `ExecMode::Serial` launch-at-a-time execution,
//! for independent statements (which overlap), WAW chains (which
//! serialize at launch granularity within one batch), and RAW chains
//! (which cut the pipeline into batches so consumers see producers'
//! write-backs). Simulated time stays mode-independent throughout.

use spdistal_repro::sparse::{dense_matrix, dense_vector, generate, SpTensor};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_outer_dim, Plan};

const PIECES: usize = 6;
const RANK: usize = 8;

/// A multi-statement program: a fresh context plus compiled plans in issue
/// order, and the tensor names whose final data should be compared.
struct Program {
    ctx: Context,
    plans: Vec<Plan>,
    observed: Vec<&'static str>,
    /// Expected batch count when pipelined (None: don't check).
    batches: Option<usize>,
}

/// Three independent SpMTTKRP mode updates (a Jacobi CP-ALS sweep): no
/// statement reads another's output, so all three share one batch.
fn cp_als_sweep() -> Program {
    let dims = [60usize, 50, 40];
    let b = generate::tensor3_skewed(dims, 4000, 0.9, 7);
    let perm =
        |perm: [usize; 3]| spdistal_repro::sparse::convert::permuted(&b, &perm, &generate::CSF3);
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    ctx.add_tensor("B0", b.clone(), Format::blocked_csf3())
        .unwrap();
    ctx.add_tensor("B1", perm([1, 0, 2]), Format::blocked_csf3())
        .unwrap();
    ctx.add_tensor("B2", perm([2, 0, 1]), Format::blocked_csf3())
        .unwrap();
    for (name, rows, seed) in [("A", dims[0], 1), ("C", dims[1], 2), ("D", dims[2], 3)] {
        ctx.add_tensor(
            name,
            dense_matrix(rows, RANK, generate::dense_buffer(rows, RANK, seed)),
            Format::replicated_dense_matrix(),
        )
        .unwrap();
    }
    for (name, rows) in [("Anew", dims[0]), ("Cnew", dims[1]), ("Dnew", dims[2])] {
        ctx.add_tensor(
            name,
            dense_matrix(rows, RANK, vec![0.0; rows * RANK]),
            Format::blocked_dense_matrix(),
        )
        .unwrap();
    }
    let mut plans = Vec::new();
    for (out, driver, f1, f2) in [
        ("Anew", "B0", "C", "D"),
        ("Cnew", "B1", "A", "D"),
        ("Dnew", "B2", "A", "C"),
    ] {
        let [m, l, u, v] = ctx.fresh_vars(["m", "l", "u", "v"]);
        let stmt = assign(
            out,
            &[m, l],
            access(driver, &[m, u, v]) * access(f1, &[u, l]) * access(f2, &[v, l]),
        );
        let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
        plans.push(ctx.compile(&stmt, &sched).unwrap());
    }
    Program {
        ctx,
        plans,
        observed: vec!["Anew", "Cnew", "Dnew"],
        batches: Some(1),
    }
}

/// SpAdd3 symbolic+numeric twice over disjoint outputs: independent
/// assembled statements, one batch.
fn double_spadd3() -> Program {
    let b = generate::uniform(120, 110, 1500, 11);
    let c = generate::shift_last_dim(&b, 3);
    let d = generate::shift_last_dim(&b, 7);
    let e = generate::shift_last_dim(&b, 9);
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    for (name, t) in [("B", &b), ("C", &c), ("D", &d), ("E", &e)] {
        ctx.add_tensor(name, t.clone(), Format::blocked_csr())
            .unwrap();
    }
    for out in ["A", "A2"] {
        ctx.add_tensor(
            out,
            spdistal_repro::spdistal::plan::empty_csr(120, 110),
            Format::blocked_csr(),
        )
        .unwrap();
    }
    let mut plans = Vec::new();
    for (out, t1, t2, t3) in [("A", "B", "C", "D"), ("A2", "C", "D", "E")] {
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign(
            out,
            &[i, j],
            access(t1, &[i, j]) + access(t2, &[i, j]) + access(t3, &[i, j]),
        );
        let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
        plans.push(ctx.compile(&stmt, &sched).unwrap());
    }
    Program {
        ctx,
        plans,
        observed: vec!["A", "A2"],
        batches: Some(1),
    }
}

/// An iterative solve: x1 = B x0; x2 = B x1; x3 = B x2. Every statement
/// reads its predecessor's output — three RAW cuts, three batches.
fn chained_spmv() -> Program {
    let b = generate::banded(240, 7, 13);
    let n = b.dims()[0];
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
    ctx.add_tensor(
        "x0",
        dense_vector(generate::dense_vec(n, 14)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    for x in ["x1", "x2", "x3"] {
        ctx.add_tensor(x, dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
            .unwrap();
    }
    let mut plans = Vec::new();
    for (out, input) in [("x1", "x0"), ("x2", "x1"), ("x3", "x2")] {
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign(out, &[i], access("B", &[i, j]) * access(input, &[j]));
        let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
        plans.push(ctx.compile(&stmt, &sched).unwrap());
    }
    Program {
        ctx,
        plans,
        observed: vec!["x1", "x2", "x3"],
        batches: Some(3),
    }
}

/// A WAW pair: y = B x0 issued twice into the same output tensor. Stays in
/// one batch (no read of the output), serialized at launch granularity;
/// the later write-back wins, exactly as launch-at-a-time.
fn waw_same_output() -> Program {
    let b = generate::rmat_default(7, 800, 17);
    let n = b.dims()[0];
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    ctx.add_tensor("B", b, Format::blocked_csr()).unwrap();
    ctx.add_tensor(
        "x0",
        dense_vector(generate::dense_vec(n, 18)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    ctx.add_tensor(
        "x1",
        dense_vector(generate::dense_vec(n, 19)),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    ctx.add_tensor("y", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
        .unwrap();
    let mut plans = Vec::new();
    for input in ["x0", "x1"] {
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign("y", &[i], access("B", &[i, j]) * access(input, &[j]));
        let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
        plans.push(ctx.compile(&stmt, &sched).unwrap());
    }
    Program {
        ctx,
        plans,
        observed: vec!["y"],
        batches: Some(1),
    }
}

fn assert_tensors_bit_identical(label: &str, a: &SpTensor, b: &SpTensor) {
    assert_eq!(a.dims(), b.dims(), "{label}: dims");
    assert_eq!(a.levels(), b.levels(), "{label}: structure");
    for (i, (x, y)) in a.vals().iter().zip(b.vals()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: value {i} differs ({x} vs {y})"
        );
    }
}

/// Run `make()`'s program launch-at-a-time serial and pipelined at several
/// thread counts; everything observable must be bit-identical.
fn check_program(label: &str, make: fn() -> Program) {
    // Reference: serial, launch-at-a-time via Context::run.
    let Program {
        mut ctx,
        plans,
        observed,
        batches,
    } = make();
    let mut serial_results = Vec::new();
    for plan in &plans {
        serial_results.push(ctx.run(plan).unwrap());
    }
    let serial_tensors: Vec<SpTensor> = observed
        .iter()
        .map(|n| ctx.tensor(n).unwrap().data.clone())
        .collect();

    // Auto splitting is the default; forcing spans additionally covers
    // pipelined split execution at both thread counts.
    for (threads, split) in [
        (2usize, SplitPolicy::Auto),
        (2, SplitPolicy::Spans(3)),
        (4, SplitPolicy::Auto),
        (4, SplitPolicy::Spans(3)),
    ] {
        let Program { mut ctx, plans, .. } = make();
        ctx.set_exec_mode(ExecMode::Parallel(threads));
        ctx.set_split_policy(split);
        let mut session = Session::new(&mut ctx);
        let futures: Vec<TensorFuture> = plans.iter().map(|p| session.submit(p)).collect();
        let report = session.flush().unwrap();
        if let Some(expected) = batches {
            assert_eq!(report.batches, expected, "{label}: batch count");
        }
        assert_eq!(report.launches.len(), plans.len(), "{label}: launch count");
        for t in &report.launches {
            assert!(
                t.issue <= t.start && t.start <= t.drain,
                "{label}: milestones out of order"
            );
        }
        for (k, (future, serial)) in futures.iter().zip(&serial_results).enumerate() {
            let result = session.wait(future).unwrap().clone();
            assert_eq!(
                serial.time, result.time,
                "{label}: simulated time of statement {k} must not depend on pipelining"
            );
            match (&serial.output, &result.output) {
                (OutputValue::Tensor(a), OutputValue::Tensor(b)) => {
                    assert_tensors_bit_identical(&format!("{label}[{k}]"), a, b)
                }
                (OutputValue::Dense(a), OutputValue::Dense(b)) => {
                    assert_eq!(a.len(), b.len(), "{label}[{k}] len");
                    for (x, y) in a.iter().zip(b) {
                        assert_eq!(x.to_bits(), y.to_bits(), "{label}[{k}]");
                    }
                }
                _ => panic!("{label}[{k}]: output kinds differ"),
            }
        }
        drop(session);
        for (name, serial) in observed.iter().zip(&serial_tensors) {
            assert_tensors_bit_identical(
                &format!("{label} final {name}"),
                serial,
                &ctx.tensor(name).unwrap().data,
            );
        }
    }
}

#[test]
fn cp_als_sweep_pipelines_bit_identically() {
    check_program("cp_als", cp_als_sweep);
}

#[test]
fn double_spadd3_pipelines_bit_identically() {
    check_program("spadd3", double_spadd3);
}

#[test]
fn raw_chain_cuts_batches_bit_identically() {
    check_program("chained_spmv", chained_spmv);
}

#[test]
fn waw_same_output_serializes_bit_identically() {
    check_program("waw", waw_same_output);
}

/// The `Program` plan cache must be invisible to results: `run_iters(n)`
/// compiles each (statement, schedule) pair exactly once and its outputs
/// stay bit-identical to per-iteration `compile_and_run` with freshly
/// compiled plans.
#[test]
fn program_plan_cache_replays_bit_identically() {
    use spdistal_repro::spdistal::{Program as ProgramApi, ScheduleSpec};
    const ITERS: usize = 3;

    let b = generate::banded(240, 7, 13);
    let n = b.dims()[0];
    let x0 = generate::dense_vec(n, 14);
    let stmts = [("x1", "x0"), ("x2", "x1"), ("x3", "x2")];

    // Reference: fresh compile + launch-at-a-time run per statement, every
    // iteration.
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    ctx.add_tensor("B", b.clone(), Format::blocked_csr())
        .unwrap();
    ctx.add_tensor(
        "x0",
        dense_vector(x0.clone()),
        Format::replicated_dense_vec(),
    )
    .unwrap();
    for x in ["x1", "x2", "x3"] {
        ctx.add_tensor(x, dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
            .unwrap();
    }
    let mut fresh_outputs = Vec::new();
    for _ in 0..ITERS {
        fresh_outputs.clear();
        for (out, input) in stmts {
            let [i, j] = ctx.fresh_vars(["i", "j"]);
            let stmt = assign(out, &[i], access("B", &[i, j]) * access(input, &[j]));
            let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
            fresh_outputs.push(ctx.compile_and_run(&stmt, &sched).unwrap().output);
        }
    }
    let fresh_tensors: Vec<SpTensor> = ["x1", "x2", "x3"]
        .iter()
        .map(|x| ctx.tensor(x).unwrap().data.clone())
        .collect();

    // The same program through the cached front-end.
    let mut program = ProgramApi::on(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()))
        .tensor("B", Format::blocked_csr(), b)
        .tensor("x0", Format::replicated_dense_vec(), dense_vector(x0))
        .tensor(
            "x1",
            Format::blocked_dense_vec(),
            dense_vector(vec![0.0; n]),
        )
        .tensor(
            "x2",
            Format::blocked_dense_vec(),
            dense_vector(vec![0.0; n]),
        )
        .tensor(
            "x3",
            Format::blocked_dense_vec(),
            dense_vector(vec![0.0; n]),
        )
        .stmt("x1(i) = B(i,j) * x0(j)")
        .schedule(ScheduleSpec::outer_dim())
        .stmt("x2(i) = B(i,j) * x1(j)")
        .schedule(ScheduleSpec::outer_dim())
        .stmt("x3(i) = B(i,j) * x2(j)")
        .schedule(ScheduleSpec::outer_dim())
        .build()
        .unwrap();
    program.run_iters(ITERS).unwrap();

    let report = program.report();
    assert_eq!(report.iterations, ITERS);
    assert_eq!(
        report.compiles,
        stmts.len(),
        "each (stmt, schedule) pair compiles exactly once across run_iters"
    );
    assert_eq!(report.cache_hits, stmts.len() * (ITERS - 1));

    for (k, fresh) in fresh_outputs.iter().enumerate() {
        let cached = &program.result(k).unwrap().output;
        match (fresh, cached) {
            (OutputValue::Tensor(a), OutputValue::Tensor(b)) => {
                assert_tensors_bit_identical(&format!("program stmt {k}"), a, b)
            }
            _ => panic!("output kinds differ for stmt {k}"),
        }
    }
    for (x, fresh) in ["x1", "x2", "x3"].iter().zip(&fresh_tensors) {
        assert_tensors_bit_identical(
            &format!("program final {x}"),
            fresh,
            &program.context().tensor(x).unwrap().data,
        );
    }
}

/// Independent launches must actually be *eligible* to overlap: the CP-ALS
/// sweep's three launches form an edge-free launch graph (observable as
/// one batch with three launches whose `issue`s all precede the flush) —
/// while the RAW chain reports strictly ordered drains.
#[test]
fn timings_reflect_dependence_structure() {
    let Program { mut ctx, plans, .. } = chained_spmv();
    ctx.set_exec_mode(ExecMode::Parallel(2));
    let mut session = Session::new(&mut ctx);
    for p in &plans {
        session.submit(p);
    }
    let report = session.flush().unwrap();
    assert_eq!(report.batches, 3);
    for pair in report.launches.windows(2) {
        assert!(
            pair[1].start >= pair[0].drain,
            "dependent statements must not overlap"
        );
    }
}

/// The modeled counterpart of the wall-clock milestones: the simulator's
/// graph-ordered replay overlaps the CP-ALS sweep's three independent
/// SpMTTKRP launches (modeled makespan strictly below the sequential
/// modeled sum), while the RAW-dependent chain tiles exactly — its
/// modeled-overlap ratio is 1, reproducing launch-at-a-time modeled time.
#[test]
fn modeled_overlap_reflects_dependence_structure() {
    // Independent sweep: one batch, overlap on the model timeline.
    let Program { mut ctx, plans, .. } = cp_als_sweep();
    ctx.set_exec_mode(ExecMode::Parallel(2));
    let mut session = Session::new(&mut ctx);
    for p in &plans {
        session.submit(p);
    }
    let report = session.flush().unwrap();
    assert_eq!(report.batches, 1);
    assert!(
        report.model_makespan() < report.model_seq_sum(),
        "independent MTTKRP modes must overlap on the model timeline: \
         makespan {} vs sequential sum {}",
        report.model_makespan(),
        report.model_seq_sum()
    );
    assert!(report.modeled_overlap() > 1.0);
    drop(session);

    // RAW chain: three single-launch batches, spans tile.
    let Program { mut ctx, plans, .. } = chained_spmv();
    ctx.set_exec_mode(ExecMode::Parallel(2));
    let mut session = Session::new(&mut ctx);
    for p in &plans {
        session.submit(p);
    }
    let report = session.flush().unwrap();
    assert_eq!(report.batches, 3);
    for pair in report.launches.windows(2) {
        assert!(pair[1].model.start >= pair[0].model.finish);
    }
    assert!(
        (report.modeled_overlap() - 1.0).abs() < 1e-9,
        "a RAW chain must have no modeled overlap, got {}",
        report.modeled_overlap()
    );
}
