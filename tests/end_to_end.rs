//! Cross-crate integration tests: full pipeline (formats + TDN + schedule →
//! compile → simulated distributed execution) for every evaluation kernel,
//! checked against the serial oracles at several machine sizes.

use spdistal_repro::sparse::{dense_matrix, dense_vector, generate, reference};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_nonzero, schedule_outer_dim};

const NODE_COUNTS: [usize; 3] = [1, 3, 8];
const WIDTH: usize = 8;

fn cpu_ctx(nodes: usize) -> Context {
    Context::new(Machine::grid1d(nodes, MachineProfile::lassen_cpu()))
}

#[test]
fn spmv_row_based_all_node_counts() {
    let b = generate::rmat_default(9, 6000, 1);
    let n = b.dims()[0];
    let c = generate::dense_vec(n, 2);
    let expect = reference::spmv(&b, &c);
    for nodes in NODE_COUNTS {
        let mut ctx = cpu_ctx(nodes);
        ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
            .unwrap();
        ctx.add_tensor("B", b.clone(), Format::blocked_csr())
            .unwrap();
        ctx.add_tensor("c", dense_vector(c.clone()), Format::replicated_dense_vec())
            .unwrap();
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
        let sched = schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread);
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        assert!(
            reference::approx_eq(r.output.as_tensor().unwrap().vals(), &expect, 1e-12),
            "nodes={nodes}"
        );
    }
}

#[test]
fn spmv_nonzero_all_node_counts() {
    let b = generate::rmat_default(9, 6000, 3);
    let n = b.dims()[0];
    let c = generate::dense_vec(n, 4);
    let expect = reference::spmv(&b, &c);
    for nodes in NODE_COUNTS {
        let mut ctx = cpu_ctx(nodes);
        ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
            .unwrap();
        ctx.add_tensor("B", b.clone(), Format::nonzero_csr())
            .unwrap();
        ctx.add_tensor("c", dense_vector(c.clone()), Format::replicated_dense_vec())
            .unwrap();
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
        let sched =
            schedule_nonzero(&mut ctx, &stmt, "B", 2, nodes, ParallelUnit::CpuThread).unwrap();
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        assert!(
            reference::approx_eq(r.output.as_tensor().unwrap().vals(), &expect, 1e-12),
            "nodes={nodes}"
        );
    }
}

#[test]
fn spmm_matches_reference() {
    let b = generate::uniform(300, 250, 4000, 5);
    let c = generate::dense_buffer(250, WIDTH, 6);
    let expect = reference::spmm(&b, &c, WIDTH);
    for nodes in NODE_COUNTS {
        let mut ctx = cpu_ctx(nodes);
        ctx.add_tensor(
            "A",
            dense_matrix(300, WIDTH, vec![0.0; 300 * WIDTH]),
            Format::blocked_dense_matrix(),
        )
        .unwrap();
        ctx.add_tensor("B", b.clone(), Format::blocked_csr())
            .unwrap();
        ctx.add_tensor(
            "C",
            dense_matrix(250, WIDTH, c.clone()),
            Format::replicated_dense_matrix(),
        )
        .unwrap();
        let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
        let stmt = assign("A", &[i, j], access("B", &[i, k]) * access("C", &[k, j]));
        let sched = schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread);
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        assert!(
            reference::approx_eq(r.output.as_tensor().unwrap().vals(), &expect, 1e-12),
            "nodes={nodes}"
        );
    }
}

#[test]
fn spadd3_assembles_union_pattern() {
    let b = generate::uniform(200, 180, 2500, 7);
    let c = generate::shift_last_dim(&b, 3);
    let d = generate::shift_last_dim(&b, 11);
    let expect = reference::spadd3(&b, &c, &d);
    for nodes in NODE_COUNTS {
        let mut ctx = cpu_ctx(nodes);
        for (name, t) in [("B", &b), ("C", &c), ("D", &d)] {
            ctx.add_tensor(name, t.clone(), Format::blocked_csr())
                .unwrap();
        }
        ctx.add_tensor(
            "A",
            spdistal_repro::spdistal::plan::empty_csr(200, 180),
            Format::blocked_csr(),
        )
        .unwrap();
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign(
            "A",
            &[i, j],
            access("B", &[i, j]) + access("C", &[i, j]) + access("D", &[i, j]),
        );
        let sched = schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread);
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        assert!(
            reference::tensors_approx_eq(r.output.as_tensor().unwrap(), &expect, 1e-12),
            "nodes={nodes}"
        );
        // Two launches: symbolic + numeric assembly (Section V-B).
        assert_eq!(r.records.len(), 2, "nodes={nodes}");
        assert!(r.records[0].name.ends_with(":symbolic"));
        assert!(r.records[1].name.ends_with(":numeric"));
    }
}

#[test]
fn sddmm_nonzero_schedule() {
    let b = generate::rmat_default(8, 2500, 9);
    let (n, m) = (b.dims()[0], b.dims()[1]);
    let c = generate::dense_buffer(n, WIDTH, 10);
    let d = generate::dense_buffer(WIDTH, m, 11);
    let expect = reference::sddmm(&b, &c, &d, WIDTH);
    for nodes in NODE_COUNTS {
        let mut ctx = cpu_ctx(nodes);
        ctx.add_tensor("A", b.clone(), Format::blocked_csr())
            .unwrap();
        ctx.add_tensor("B", b.clone(), Format::nonzero_csr())
            .unwrap();
        ctx.add_tensor(
            "C",
            dense_matrix(n, WIDTH, c.clone()),
            Format::staged_dense_matrix(),
        )
        .unwrap();
        ctx.add_tensor(
            "D",
            dense_matrix(WIDTH, m, d.clone()),
            Format::staged_dense_matrix(),
        )
        .unwrap();
        let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
        let stmt = assign(
            "A",
            &[i, j],
            access("B", &[i, j]) * access("C", &[i, k]) * access("D", &[k, j]),
        );
        let sched =
            schedule_nonzero(&mut ctx, &stmt, "B", 2, nodes, ParallelUnit::CpuThread).unwrap();
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        assert!(
            reference::approx_eq(r.output.as_tensor().unwrap().vals(), expect.vals(), 1e-12),
            "nodes={nodes}"
        );
    }
}

#[test]
fn spttv_both_schedules() {
    let b = generate::tensor3_skewed([60, 40, 50], 5000, 0.9, 13);
    let c = generate::dense_vec(50, 14);
    let expect = spdistal_repro::sparse::convert::to_dense(&reference::spttv(&b, &c));
    for (nonzero, nodes) in [(false, 4), (true, 4), (false, 8), (true, 8)] {
        let mut ctx = cpu_ctx(nodes);
        let fmt = if nonzero {
            Format::nonzero_csf3()
        } else {
            Format::blocked_csf3()
        };
        ctx.add_tensor("B", b.clone(), fmt).unwrap();
        let fibers = spdistal_repro::spdistal::kernels::tensor3::spttv_output(
            &b,
            vec![0.0; spdistal_repro::spdistal::level_funcs::entry_counts(&b)[1] as usize],
        );
        ctx.add_tensor("A", fibers, Format::blocked_csr()).unwrap();
        ctx.add_tensor("c", dense_vector(c.clone()), Format::replicated_dense_vec())
            .unwrap();
        let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
        let stmt = assign("A", &[i, j], access("B", &[i, j, k]) * access("c", &[k]));
        let sched = if nonzero {
            schedule_nonzero(&mut ctx, &stmt, "B", 3, nodes, ParallelUnit::CpuThread).unwrap()
        } else {
            schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread)
        };
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        let got = spdistal_repro::sparse::convert::to_dense(r.output.as_tensor().unwrap());
        assert!(
            reference::approx_eq(&got, &expect, 1e-12),
            "nonzero={nonzero} nodes={nodes}"
        );
    }
}

#[test]
fn spmttkrp_matches_reference() {
    let b = generate::tensor3_uniform([50, 45, 55], 4000, 17);
    let c = generate::dense_buffer(45, WIDTH, 18);
    let d = generate::dense_buffer(55, WIDTH, 19);
    let expect = reference::spmttkrp(&b, &c, &d, WIDTH);
    for nodes in NODE_COUNTS {
        let mut ctx = cpu_ctx(nodes);
        ctx.add_tensor("B", b.clone(), Format::blocked_csf3())
            .unwrap();
        ctx.add_tensor(
            "A",
            dense_matrix(50, WIDTH, vec![0.0; 50 * WIDTH]),
            Format::blocked_dense_matrix(),
        )
        .unwrap();
        ctx.add_tensor(
            "C",
            dense_matrix(45, WIDTH, c.clone()),
            Format::replicated_dense_matrix(),
        )
        .unwrap();
        ctx.add_tensor(
            "D",
            dense_matrix(55, WIDTH, d.clone()),
            Format::replicated_dense_matrix(),
        )
        .unwrap();
        let [i, l, j, k] = ctx.fresh_vars(["i", "l", "j", "k"]);
        let stmt = assign(
            "A",
            &[i, l],
            access("B", &[i, j, k]) * access("C", &[j, l]) * access("D", &[k, l]),
        );
        let sched = schedule_outer_dim(&mut ctx, &stmt, nodes, ParallelUnit::CpuThread);
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        assert!(
            reference::approx_eq(r.output.as_tensor().unwrap().vals(), &expect, 1e-12),
            "nodes={nodes}"
        );
    }
}

/// COO ({Compressed, Singleton}) matrices work through the whole pipeline:
/// a non-zero (position-space) distribution over the COO entries.
#[test]
fn coo_format_spmv_nonzero_distribution() {
    use spdistal_repro::ir::Distribution;
    use spdistal_repro::sparse::LevelFormat;
    let csr = generate::rmat_default(8, 3000, 29);
    let b = spdistal_repro::sparse::convert::to_coo_format(&csr);
    let n = b.dims()[0];
    let c = generate::dense_vec(n, 30);
    let expect = reference::spmv(&csr, &c);
    for nodes in [1usize, 4, 6] {
        let mut ctx = cpu_ctx(nodes);
        ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
            .unwrap();
        // COO with a fused non-zero distribution: B xy (xy->f) -> ~f M.
        ctx.add_tensor(
            "B",
            b.clone(),
            Format::new(
                vec![LevelFormat::Compressed, LevelFormat::Singleton],
                Distribution::new("xy", "~f")
                    .unwrap()
                    .with_fusion("xy", 'f'),
            ),
        )
        .unwrap();
        ctx.add_tensor("c", dense_vector(c.clone()), Format::replicated_dense_vec())
            .unwrap();
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
        let sched =
            schedule_nonzero(&mut ctx, &stmt, "B", 2, nodes, ParallelUnit::CpuThread).unwrap();
        let r = ctx.compile_and_run(&stmt, &sched).unwrap();
        assert!(
            reference::approx_eq(r.output.as_tensor().unwrap().vals(), &expect, 1e-12),
            "nodes={nodes}"
        );
    }
}

#[test]
fn dds_patents_layout_end_to_end() {
    use spdistal_repro::sparse::LevelFormat;
    let b = generate::tensor3_uniform_fmt(
        [8, 16, 200],
        3000,
        23,
        &[
            LevelFormat::Dense,
            LevelFormat::Dense,
            LevelFormat::Compressed,
        ],
    );
    let c = generate::dense_buffer(16, WIDTH, 24);
    let d = generate::dense_buffer(200, WIDTH, 25);
    let expect = reference::spmttkrp(&b, &c, &d, WIDTH);
    let mut ctx = cpu_ctx(4);
    // {Dense, Dense, Compressed} with slice distribution.
    ctx.add_tensor(
        "B",
        b.clone(),
        Format::new(
            vec![
                LevelFormat::Dense,
                LevelFormat::Dense,
                LevelFormat::Compressed,
            ],
            spdistal_repro::ir::Distribution::new("xyz", "x").unwrap(),
        ),
    )
    .unwrap();
    ctx.add_tensor(
        "A",
        dense_matrix(8, WIDTH, vec![0.0; 8 * WIDTH]),
        Format::blocked_dense_matrix(),
    )
    .unwrap();
    ctx.add_tensor(
        "C",
        dense_matrix(16, WIDTH, c.clone()),
        Format::replicated_dense_matrix(),
    )
    .unwrap();
    ctx.add_tensor(
        "D",
        dense_matrix(200, WIDTH, d.clone()),
        Format::replicated_dense_matrix(),
    )
    .unwrap();
    let [i, l, j, k] = ctx.fresh_vars(["i", "l", "j", "k"]);
    let stmt = assign(
        "A",
        &[i, l],
        access("B", &[i, j, k]) * access("C", &[j, l]) * access("D", &[k, l]),
    );
    let sched = schedule_outer_dim(&mut ctx, &stmt, 4, ParallelUnit::CpuThread);
    let r = ctx.compile_and_run(&stmt, &sched).unwrap();
    assert!(reference::approx_eq(
        r.output.as_tensor().unwrap().vals(),
        &expect,
        1e-12
    ));
}
