//! Plan-level dispatch regression tests for the specialized kernel table:
//! blessed (kernel, format) pairs must resolve to a monomorphized kernel
//! (counting `kernel.specialized`), and unblessed pairs must fall back to
//! the generic partitioned walker — running correctly and counting
//! `kernel.fallback`, with no panic and no silent wrong dispatch.

use spdistal_repro::sparse::{convert, dense_vector, generate, reference};
use spdistal_repro::spdistal::kernels::tensor3::spttv_output;
use spdistal_repro::spdistal::level_funcs::entry_counts;
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_nonzero, schedule_outer_dim};

fn counter(trace: &Trace, name: &str) -> u64 {
    trace
        .metrics()
        .expect("trace enabled")
        .counter_values()
        .into_iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| v)
}

fn traced_ctx() -> Context {
    Context::new(Machine::grid1d(2, MachineProfile::lassen_cpu())).with_trace(Trace::enabled())
}

/// Run SpMV through the full plan path with the driver in `fmt`, returning
/// the dense output and the context's trace.
fn run_spmv(fmt: Format, nonzero: bool) -> (Vec<f64>, Trace) {
    let mut ctx = traced_ctx();
    let base = generate::rmat_default(6, 800, 51);
    // Store the driver in the declared format's actual level layout.
    let b = match fmt.levels_signature().as_str() {
        "{Compressed,Compressed}" => convert::to_dcsr(&base),
        "{Compressed,Singleton}" => convert::to_coo_format(&base),
        _ => base.clone(),
    };
    let n = b.dims()[0];
    let c = generate::dense_vec(n, 52);
    let expect = reference::spmv(&base, &c);
    ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())
        .unwrap();
    ctx.add_tensor("B", b, fmt).unwrap();
    ctx.add_tensor("c", dense_vector(c), Format::replicated_dense_vec())
        .unwrap();
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
    let sched = if nonzero {
        schedule_nonzero(&mut ctx, &stmt, "B", 2, 2, ParallelUnit::CpuThread).unwrap()
    } else {
        schedule_outer_dim(&mut ctx, &stmt, 2, ParallelUnit::CpuThread)
    };
    let result = ctx.compile_and_run(&stmt, &sched).unwrap();
    let out = match result.output {
        OutputValue::Dense(v) => v,
        OutputValue::Tensor(t) => t.vals().to_vec(),
    };
    assert!(
        reference::approx_eq(&out, &expect, 1e-9),
        "SpMV result diverged from the oracle"
    );
    (out, ctx.trace().clone())
}

#[test]
fn blessed_csr_spmv_dispatches_specialized() {
    let (_, trace) = run_spmv(Format::blocked_csr(), false);
    assert!(
        counter(&trace, "kernel.specialized") >= 1,
        "CSR SpMV should resolve to the specialized kernel"
    );
    assert_eq!(
        counter(&trace, "kernel.fallback"),
        0,
        "CSR SpMV should not fall back"
    );
}

#[test]
fn blessed_formats_agree_with_csr_through_the_plan() {
    let (csr, _) = run_spmv(Format::blocked_csr(), false);
    for fmt in [Format::blocked_dcsr(), Format::blocked_coo()] {
        let sig = fmt.signature();
        let (out, trace) = run_spmv(fmt, false);
        assert!(
            counter(&trace, "kernel.specialized") >= 1,
            "{sig}: SpMV should resolve to the specialized kernel"
        );
        assert_eq!(out.len(), csr.len(), "{sig}: length");
        for (i, (a, b)) in out.iter().zip(&csr).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{sig}: value {i} differs from the CSR run ({a} vs {b})"
            );
        }
    }
}

#[test]
fn nonzero_schedule_still_dispatches_specialized() {
    let (_, trace) = run_spmv(Format::nonzero_csr(), true);
    assert!(
        counter(&trace, "kernel.specialized") >= 1,
        "non-zero-split CSR SpMV should still resolve (same storage levels)"
    );
}

#[test]
fn unblessed_spttv_falls_back_to_walker() {
    let mut ctx = traced_ctx();
    let b = generate::tensor3_skewed([24, 18, 20], 900, 0.9, 53);
    let c = generate::dense_vec(20, 54);
    let expect = reference::spttv(&b, &c);
    let fibers = spttv_output(&b, vec![0.0; entry_counts(&b)[1] as usize]);
    ctx.add_tensor("B", b, Format::blocked_csf3()).unwrap();
    ctx.add_tensor("A", fibers, Format::blocked_csr()).unwrap();
    ctx.add_tensor("c", dense_vector(c), Format::replicated_dense_vec())
        .unwrap();
    let [i, j, k] = ctx.fresh_vars(["i", "j", "k"]);
    let stmt = assign("A", &[i, j], access("B", &[i, j, k]) * access("c", &[k]));
    let sched = schedule_outer_dim(&mut ctx, &stmt, 2, ParallelUnit::CpuThread);
    let result = ctx.compile_and_run(&stmt, &sched).unwrap();
    let OutputValue::Tensor(out) = result.output else {
        panic!("SpTTV output is a sparse tensor");
    };
    assert!(
        reference::tensors_approx_eq(&out, &expect, 1e-9),
        "fallback SpTTV result diverged from the oracle"
    );
    let trace = ctx.trace();
    assert!(
        counter(trace, "kernel.fallback") >= 1,
        "SpTtv has no blessed entry and must count a fallback"
    );
    assert_eq!(
        counter(trace, "kernel.specialized"),
        0,
        "SpTtv must not claim a specialized dispatch"
    );
}

#[test]
fn dispatch_events_land_in_the_chrome_trace() {
    let (_, trace) = run_spmv(Format::blocked_csr(), false);
    let json = trace.chrome_trace().expect("trace enabled");
    assert!(
        json.contains("kernel-dispatch"),
        "chrome trace should carry the kernel-dispatch category"
    );
    assert!(
        json.contains("kernel-specialized"),
        "chrome trace should name the specialized dispatch instant"
    );
}
