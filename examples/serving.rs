//! Serving: two tenants, one plan cache.
//!
//! Starts an in-process `spd-server` on a Unix socket, connects two
//! tenants in turn, and shows the multi-tenant contract end to end:
//! tenant `alice` pays the compile (a `plan_cache.miss`), tenant `bob`
//! submits the same statement/schedule/formats and rides her plan (a
//! cross-tenant `plan_cache.hit`), and both match the serial oracle.
//!
//! Run with: `cargo run --release --example serving`

use spdistal_repro::sparse::{dense_vector, generate, reference};

use spdistal_client::{Client, Event};
use spdistal_server::{Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path =
        std::env::temp_dir().join(format!("spd-serving-example-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let server = Server::bind_uds(&path, ServerConfig::default())?;
    let engine = server.engine().clone();
    let thread = std::thread::spawn(move || server.run());
    println!("spd-server listening on {}", path.display());

    let b_data = generate::banded(2_000, 11, 42);
    let (n, m) = (b_data.dims()[0], b_data.dims()[1]);
    let c_data = generate::dense_vec(m, 7);
    let oracle = reference::spmv(&b_data, &c_data);

    for tenant in ["alice", "bob"] {
        let mut client = Client::connect_uds(&path)?;
        client.hello(tenant)?;
        client.register_tensor("a", "blocked_dense_vec", &dense_vector(vec![0.0; n]))?;
        client.register_tensor("B", "blocked_csr", &b_data)?;
        client.register_tensor("c", "replicated_dense_vec", &dense_vector(c_data.clone()))?;
        let outcome = client.submit(&[("a(i) = B(i,j) * c(j)", "auto")], 1, true, |ev| {
            if let Event::AutoDecision { choice, reason, .. } = ev {
                println!("  [{tenant}] auto-scheduler picked: {choice} ({reason})");
            }
        })?;
        let vals = &outcome.results.first().ok_or("no result")?.1;
        assert!(reference::approx_eq(vals, &oracle, 1e-12));
        println!(
            "  [{tenant}] result matches the oracle; plan_cache.hit={} plan_cache.miss={}",
            outcome.cache_hits, outcome.compiles
        );
    }

    let cache = engine.plan_cache();
    println!(
        "shared plan cache: {} plan(s), {} miss(es), {} hit(s) ({} cross-tenant)",
        cache.len(),
        cache.misses(),
        cache.hits(),
        cache.cross_tenant_hits()
    );
    assert_eq!(cache.cross_tenant_hits(), 1, "bob must ride alice's plan");

    let mut client = Client::connect_uds(&path)?;
    client.shutdown_server()?;
    thread.join().expect("server thread")?;
    println!("server drained and stopped");
    Ok(())
}
