//! Quickstart: the distributed CPU SpMV of Figure 1, line by line.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::sparse::{dense_vector, generate, reference};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Param pieces, n, m;  Machine M(Grid(pieces));
    let pieces = 4;
    let machine = Machine::grid1d(pieces, MachineProfile::lassen_cpu());
    let mut ctx = Context::new(machine);

    // Define the data structure and distribution for each tensor:
    // a blocked dense vector, a row-wise distributed CSR matrix, and a
    // replicated dense vector (Figure 1 lines 12-16).
    let blocked_dense = Format::blocked_dense_vec(); // {Dense},  x -> x M
    let repl_dense = Format::replicated_dense_vec(); // {Dense},  x -> y M
    let blocked_csr = Format::blocked_csr(); //      {Dense, Compressed}, xy -> x M

    // Create our tensors using the defined formats (lines 18-22).
    let (n, m) = (10_000, 10_000);
    let b_data = generate::banded(n, 11, 42);
    let c_data = generate::dense_vec(m, 7);
    ctx.add_tensor("a", dense_vector(vec![0.0; n]), blocked_dense)?;
    ctx.add_tensor("B", b_data.clone(), blocked_csr)?;
    ctx.add_tensor("c", dense_vector(c_data.clone()), repl_dense)?;

    // Declare the computation, a matrix-vector multiply (lines 25-26):
    //   a(i) = B(i, j) * c(j)
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = spdistal_repro::spdistal::assign(
        "a",
        &[i],
        spdistal_repro::spdistal::access("B", &[i, j])
            * spdistal_repro::spdistal::access("c", &[j]),
    );

    // Map the computation onto M via scheduling commands (lines 30-39):
    // divide i into blocks, distribute the blocks, communicate the needed
    // sub-tensors, parallelize the leaves over CPU threads.
    let mut sched = Schedule::new();
    let (io, ii) = sched.divide(ctx.vars_mut(), i, pieces);
    sched
        .distribute(io, 0)
        .communicate(&["a", "B", "c"], io)
        .parallelize(ii, ParallelUnit::CpuThread);

    // Compile and execute on the simulated machine.
    let result = ctx.compile_and_run(&stmt, &sched)?;

    // Check against the serial oracle.
    let expect = reference::spmv(&b_data, &c_data);
    let got = result.output.as_tensor().expect("dense vector output");
    assert!(reference::approx_eq(got.vals(), &expect, 1e-12));

    println!("distributed SpMV on {pieces} simulated nodes");
    println!("  simulated time : {:.3} ms", result.time * 1e3);
    println!("  communication  : {} bytes in {} messages", result.comm_bytes, result.messages);
    println!("  modeled ops    : {:.0}", result.ops);
    println!("  result matches the serial reference ✔");
    Ok(())
}
