//! Quickstart: the distributed CPU SpMV of Figure 1 through the `Program`
//! front-end — machine, tensor formats, one TIN statement, and a schedule
//! spec, in one builder chain.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --parallel [N_THREADS]
//! cargo run --release --example quickstart -- --skew 0.9 --trace trace.json
//! SPD_TRACE=1 cargo run --release --example quickstart -- --skew 0.95
//! ```
//!
//! The statement is auto-scheduled (`ScheduleSpec::Auto`): the program
//! picks between the outer-dimension (row) distribution and the non-zero
//! distribution from the matrix's nnz statistics, re-examining the choice
//! after a warm-up run — and prints which one it picked and why.
//!
//! Leaf kernels run on the work-stealing executor by default (at least two
//! workers, so steals are observable even on one-core hosts; the simulated
//! time is identical to a serial run by construction — the executor never
//! feeds back into the cost model). `--parallel [N]` pins the worker
//! count, `--serial` opts back out. With `--skew <alpha>`, the banded
//! matrix is replaced by a *clustered* R-MAT input
//! (`generate::rmat_clustered`): hub rows concentrate at low indices, the
//! blocked row distribution hands one color most of the non-zeros, and the
//! auto-scheduler switches to the statically load-balanced non-zero
//! distribution.
//!
//! `--trace <path>` (or the `SPD_TRACE` environment variable: `1` for
//! `trace.json`, any other value is the path) turns on the structured
//! trace: the run writes a Chrome trace-event file loadable in Perfetto /
//! `chrome://tracing` and prints a one-line `run_report_json=` metrics
//! summary.

use spdistal_repro::obs;
use spdistal_repro::sparse::{dense_vector, generate, reference};
use spdistal_repro::spdistal::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Optional flags: `--parallel [N]`, `--serial`, `--skew <alpha>`,
    // `--trace <path>`.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parallel_threads: Option<usize> = None;
    let mut serial = false;
    let mut skew: Option<f64> = None;
    let mut trace_path: Option<String> = None;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--parallel" => {
                // Bare `--parallel` means Parallel(0): auto-detect, see
                // the ExecMode::Parallel docs for the policy.
                match args.get(k + 1).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => {
                        parallel_threads = Some(n);
                        k += 1;
                    }
                    None => parallel_threads = Some(0),
                }
            }
            "--serial" => serial = true,
            "--skew" => {
                let alpha = args
                    .get(k + 1)
                    .and_then(|a| a.parse::<f64>().ok())
                    .ok_or("--skew needs an <alpha> in [0, 1]")?;
                skew = Some(alpha);
                k += 1;
            }
            "--trace" => {
                trace_path = Some(args.get(k + 1).ok_or("--trace needs a <path>")?.clone());
                k += 1;
            }
            unknown => {
                eprintln!(
                    "unknown argument '{unknown}' (supported: --parallel [N], --serial, \
                     --skew <alpha>, --trace <path>)"
                );
                std::process::exit(2);
            }
        }
        k += 1;
    }
    let trace_path = trace_path.or_else(obs::env_trace_path);
    let trace = if trace_path.is_some() {
        Trace::enabled()
    } else {
        Trace::disabled()
    };

    // Param pieces;  Machine M(Grid(pieces));
    let pieces = 4;
    let machine = Machine::grid1d(pieces, MachineProfile::lassen_cpu());

    // Tensor data: the banded weak-scaling matrix by default; `--skew`
    // swaps in the hub-clustered R-MAT whose row blocks are imbalanced.
    let b_data = match skew {
        Some(alpha) => generate::rmat_clustered(13, 120_000, alpha, 42),
        None => generate::banded(10_000, 11, 42),
    };
    let (n, m) = (b_data.dims()[0], b_data.dims()[1]);
    let c_data = generate::dense_vec(m, 7);

    // Figure 1 in one chain: machine, formats + data, the TIN statement,
    // and the (auto-)schedule.
    let mut program = Program::on(machine)
        .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
        .tensor("B", Format::blocked_csr(), b_data.clone())
        .tensor(
            "c",
            Format::replicated_dense_vec(),
            dense_vector(c_data.clone()),
        )
        .stmt("a(i) = B(i,j) * c(j)")
        .auto()
        .exec_mode(if serial {
            ExecMode::Serial
        } else {
            // At least two workers even on a one-core host, so the
            // work-stealing counters (and trace events) have something
            // to show.
            ExecMode::Parallel(parallel_threads.unwrap_or_else(default_threads))
        })
        .trace(trace.clone())
        .build()?;

    // Warm-up + one steady-state iteration: the plan compiles once per
    // schedule the auto-tuner selects; everything else hits the cache.
    program.run_iters(2)?;
    let report = program.report().clone();
    let result = program.result(0).expect("statement ran").clone();

    // Check against the serial oracle.
    let expect = reference::spmv(&b_data, &c_data);
    let got = result.output.as_tensor().expect("dense vector output");
    assert!(reference::approx_eq(got.vals(), &expect, 1e-12));

    match skew {
        Some(alpha) => println!(
            "distributed SpMV on {pieces} simulated nodes (clustered R-MAT, alpha {alpha})"
        ),
        None => println!("distributed SpMV on {pieces} simulated nodes"),
    }
    for d in &report.decisions {
        println!("  auto-scheduler picked: {} ({})", d.choice, d.reason);
    }
    println!(
        "  schedule       : {} [{}]",
        report.stmts[0].schedule, report.stmts[0].schedule_kind
    );
    println!(
        "  plan cache     : {} compiles, {} hits over {} iterations",
        report.compiles, report.cache_hits, report.iterations
    );
    println!("  simulated time : {:.3} ms", result.time * 1e3);
    println!(
        "  communication  : {} bytes in {} messages",
        result.comm_bytes, result.messages
    );
    println!("  modeled ops    : {:.0}", result.ops);
    println!(
        "  compute        : {:.3} ms wall-clock",
        result.wall_time * 1e3
    );
    println!("  result matches the serial reference ✔");

    // When parallel (the default): report the executor's two-level
    // counters and check bit-identity against a serial run of the same
    // program. The serial comparison is pinned to the schedule the
    // parallel program's auto-tuner ended on — re-running Auto serially
    // could legitimately choose differently (the measured-skew feedback
    // only fires when the executor actually steals), which is a schedule
    // difference, not a correctness one.
    if !serial {
        let par = &result;
        let pinned = match report.stmts[0].schedule_kind {
            "non-zero" => ScheduleSpec::nonzero(),
            _ => ScheduleSpec::outer_dim(),
        };
        let mut serial = Program::on(Machine::grid1d(pieces, MachineProfile::lassen_cpu()))
            .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
            .tensor("B", Format::blocked_csr(), b_data.clone())
            .tensor(
                "c",
                Format::replicated_dense_vec(),
                dense_vector(c_data.clone()),
            )
            .stmt("a(i) = B(i,j) * c(j)")
            .schedule(pinned)
            .build()?;
        serial.run_iters(2)?;
        let serial_out = serial.result(0).unwrap().output.clone();
        let serial_vals = serial_out.as_tensor().unwrap().vals();
        assert!(
            got.vals()
                .iter()
                .zip(serial_vals)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "parallel output must be bit-identical to serial"
        );
        println!(
            "parallel executor ({} threads, two-level: {} spans over {} colors)",
            par.sched.threads, par.sched.spans, par.sched.tasks
        );
        println!(
            "  task graph       : {} tasks, {} edges, critical path {}",
            par.sched.tasks, par.sched.edges, par.sched.critical_path
        );
        println!(
            "  steals           : {} ({:.0}% of spans)",
            par.sched.steals,
            par.sched.steal_rate() * 1e2
        );
        println!(
            "  critical color   : {:.3} ms measured ({:.2}x the balanced share)",
            par.sched.critical_task_seconds * 1e3,
            par.sched.task_skew()
        );
        println!("  bit-identical to the serial path ✔");
    }

    if let Some(path) = &trace_path {
        program.write_chrome_trace(path)?;
        println!("  chrome trace     : wrote {path} (load in Perfetto / chrome://tracing)");
    }
    if trace.is_enabled() {
        println!("run_report_json={}", program.run_report_json("quickstart"));
    }
    Ok(())
}

/// Default worker count for the work-stealing executor: the host's
/// available parallelism, but never fewer than two.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}
