//! Quickstart: the distributed CPU SpMV of Figure 1, line by line.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --parallel [N_THREADS]
//! ```
//!
//! With `--parallel`, the leaf kernels additionally run on the
//! dependence-driven work-stealing executor and the example reports real
//! wall-clock time for both modes (the simulated time is identical by
//! construction: the executor never feeds back into the cost model).

use spdistal_repro::sparse::{dense_vector, generate, reference};
use spdistal_repro::spdistal::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Optional: `--parallel [N]` exercises the parallel executor.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parallel_threads = match args.iter().position(|a| a == "--parallel") {
        Some(k) => Some(
            args.get(k + 1)
                .and_then(|n| n.parse::<usize>().ok())
                .unwrap_or(0), // 0 = ask the OS for available parallelism
        ),
        None => {
            if let Some(unknown) = args.first() {
                eprintln!("unknown argument '{unknown}' (supported: --parallel [N])");
                std::process::exit(2);
            }
            None
        }
    };

    // Param pieces, n, m;  Machine M(Grid(pieces));
    let pieces = 4;
    let machine = Machine::grid1d(pieces, MachineProfile::lassen_cpu());
    let mut ctx = Context::new(machine);

    // Define the data structure and distribution for each tensor:
    // a blocked dense vector, a row-wise distributed CSR matrix, and a
    // replicated dense vector (Figure 1 lines 12-16).
    let blocked_dense = Format::blocked_dense_vec(); // {Dense},  x -> x M
    let repl_dense = Format::replicated_dense_vec(); // {Dense},  x -> y M
    let blocked_csr = Format::blocked_csr(); //      {Dense, Compressed}, xy -> x M

    // Create our tensors using the defined formats (lines 18-22).
    let (n, m) = (10_000, 10_000);
    let b_data = generate::banded(n, 11, 42);
    let c_data = generate::dense_vec(m, 7);
    ctx.add_tensor("a", dense_vector(vec![0.0; n]), blocked_dense)?;
    ctx.add_tensor("B", b_data.clone(), blocked_csr)?;
    ctx.add_tensor("c", dense_vector(c_data.clone()), repl_dense)?;

    // Declare the computation, a matrix-vector multiply (lines 25-26):
    //   a(i) = B(i, j) * c(j)
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = spdistal_repro::spdistal::assign(
        "a",
        &[i],
        spdistal_repro::spdistal::access("B", &[i, j])
            * spdistal_repro::spdistal::access("c", &[j]),
    );

    // Map the computation onto M via scheduling commands (lines 30-39):
    // divide i into blocks, distribute the blocks, communicate the needed
    // sub-tensors, parallelize the leaves over CPU threads.
    let mut sched = Schedule::new();
    let (io, ii) = sched.divide(ctx.vars_mut(), i, pieces);
    sched
        .distribute(io, 0)
        .communicate(&["a", "B", "c"], io)
        .parallelize(ii, ParallelUnit::CpuThread);

    // Compile once; execute on the simulated machine (serial leaf kernels).
    let plan = ctx.compile(&stmt, &sched)?;
    let result = ctx.run(&plan)?;

    // Check against the serial oracle.
    let expect = reference::spmv(&b_data, &c_data);
    let got = result.output.as_tensor().expect("dense vector output");
    assert!(reference::approx_eq(got.vals(), &expect, 1e-12));

    println!("distributed SpMV on {pieces} simulated nodes");
    println!("  simulated time : {:.3} ms", result.time * 1e3);
    println!(
        "  communication  : {} bytes in {} messages",
        result.comm_bytes, result.messages
    );
    println!("  modeled ops    : {:.0}", result.ops);
    println!(
        "  serial compute : {:.3} ms wall-clock",
        result.wall_time * 1e3
    );
    println!("  result matches the serial reference ✔");

    // With --parallel: the same plan on the work-stealing executor. The
    // output is bit-identical; only real wall-clock changes.
    if let Some(threads) = parallel_threads {
        let mode = ExecMode::Parallel(threads);
        let par = ctx.run_with_mode(&plan, mode)?;
        let par_out = par.output.as_tensor().expect("dense vector output");
        assert!(
            got.vals()
                .iter()
                .zip(par_out.vals())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "parallel output must be bit-identical to serial"
        );
        println!("parallel executor ({} threads)", par.sched.threads);
        println!(
            "  parallel compute : {:.3} ms wall-clock",
            par.wall_time * 1e3
        );
        println!(
            "  task graph       : {} tasks, {} edges, critical path {}",
            par.sched.tasks, par.sched.edges, par.sched.critical_path
        );
        println!("  steals           : {}", par.sched.steals);
        println!(
            "  speedup          : {:.2}x over serial compute",
            result.wall_time / par.wall_time.max(1e-12)
        );
        println!("  bit-identical to the serial path ✔");
    }
    Ok(())
}
