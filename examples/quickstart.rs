//! Quickstart: the distributed CPU SpMV of Figure 1, line by line.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --parallel [N_THREADS]
//! cargo run --release --example quickstart -- --skew 0.9 --parallel
//! ```
//!
//! With `--parallel`, the same plan additionally runs through a deferred
//! [`Session`] on the dependence-driven work-stealing executor, and the
//! example reports real wall-clock time for both modes (the simulated time
//! is identical by construction: the executor never feeds back into the
//! cost model). `N_THREADS` defaults to 0 — see [`ExecMode::Parallel`] for
//! the auto-detect and clamping policy.
//!
//! With `--skew <alpha>`, the banded matrix is replaced by a *clustered*
//! R-MAT input (`generate::rmat_clustered`): hub rows concentrate at low
//! indices, so the blocked row distribution hands one color most of the
//! non-zeros. That is the load-balance scenario where two-level execution
//! pays off — the executor splits the dominant color into spans idle
//! workers steal, instead of idling behind it.

use spdistal_repro::sparse::{dense_vector, generate, reference};
use spdistal_repro::spdistal::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Optional flags: `--parallel [N]`, `--skew <alpha>`.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parallel_threads: Option<usize> = None;
    let mut skew: Option<f64> = None;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--parallel" => {
                // Bare `--parallel` means Parallel(0): auto-detect, see
                // the ExecMode::Parallel docs for the policy.
                match args.get(k + 1).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => {
                        parallel_threads = Some(n);
                        k += 1;
                    }
                    None => parallel_threads = Some(0),
                }
            }
            "--skew" => {
                let alpha = args
                    .get(k + 1)
                    .and_then(|a| a.parse::<f64>().ok())
                    .ok_or("--skew needs an <alpha> in [0, 1]")?;
                skew = Some(alpha);
                k += 1;
            }
            unknown => {
                eprintln!(
                    "unknown argument '{unknown}' (supported: --parallel [N], --skew <alpha>)"
                );
                std::process::exit(2);
            }
        }
        k += 1;
    }

    // Param pieces, n, m;  Machine M(Grid(pieces));
    let pieces = 4;
    let machine = Machine::grid1d(pieces, MachineProfile::lassen_cpu());
    let mut ctx = Context::new(machine);

    // Define the data structure and distribution for each tensor:
    // a blocked dense vector, a row-wise distributed CSR matrix, and a
    // replicated dense vector (Figure 1 lines 12-16).
    let blocked_dense = Format::blocked_dense_vec(); // {Dense},  x -> x M
    let repl_dense = Format::replicated_dense_vec(); // {Dense},  x -> y M
    let blocked_csr = Format::blocked_csr(); //      {Dense, Compressed}, xy -> x M

    // Create our tensors using the defined formats (lines 18-22). The
    // default input is the banded weak-scaling matrix; `--skew` swaps in
    // the hub-clustered R-MAT whose row blocks are badly imbalanced.
    let b_data = match skew {
        Some(alpha) => generate::rmat_clustered(13, 120_000, alpha, 42),
        None => generate::banded(10_000, 11, 42),
    };
    let (n, m) = (b_data.dims()[0], b_data.dims()[1]);
    let c_data = generate::dense_vec(m, 7);
    ctx.add_tensor("a", dense_vector(vec![0.0; n]), blocked_dense)?;
    ctx.add_tensor("B", b_data.clone(), blocked_csr)?;
    ctx.add_tensor("c", dense_vector(c_data.clone()), repl_dense)?;

    // Declare the computation, a matrix-vector multiply (lines 25-26):
    //   a(i) = B(i, j) * c(j)
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = spdistal_repro::spdistal::assign(
        "a",
        &[i],
        spdistal_repro::spdistal::access("B", &[i, j])
            * spdistal_repro::spdistal::access("c", &[j]),
    );

    // Map the computation onto M via scheduling commands (lines 30-39):
    // divide i into blocks, distribute the blocks, communicate the needed
    // sub-tensors, parallelize the leaves over CPU threads.
    let mut sched = Schedule::new();
    let (io, ii) = sched.divide(ctx.vars_mut(), i, pieces);
    sched
        .distribute(io, 0)
        .communicate(&["a", "B", "c"], io)
        .parallelize(ii, ParallelUnit::CpuThread);

    // Compile once; execute on the simulated machine (serial leaf kernels).
    let plan = ctx.compile(&stmt, &sched)?;
    let result = ctx.run(&plan)?;

    // Check against the serial oracle.
    let expect = reference::spmv(&b_data, &c_data);
    let got = result.output.as_tensor().expect("dense vector output");
    assert!(reference::approx_eq(got.vals(), &expect, 1e-12));

    match skew {
        Some(alpha) => println!(
            "distributed SpMV on {pieces} simulated nodes \
             (clustered R-MAT, alpha {alpha}, row-block imbalance {:.2}x)",
            plan.inputs[0].part.vals.imbalance()
        ),
        None => println!("distributed SpMV on {pieces} simulated nodes"),
    }
    println!("  simulated time : {:.3} ms", result.time * 1e3);
    println!(
        "  communication  : {} bytes in {} messages",
        result.comm_bytes, result.messages
    );
    println!("  modeled ops    : {:.0}", result.ops);
    println!(
        "  serial compute : {:.3} ms wall-clock",
        result.wall_time * 1e3
    );
    println!("  result matches the serial reference ✔");

    // With --parallel: the same plan, deferred through a Session onto the
    // work-stealing executor. Auto split policy chunks dominant colors
    // into spans (two-level execution); the output is bit-identical and
    // only real wall-clock changes.
    if let Some(threads) = parallel_threads {
        ctx.set_exec_mode(ExecMode::Parallel(threads));
        let par = {
            let mut session = Session::new(&mut ctx);
            let future = session.submit(&plan);
            session.wait(&future)?.clone()
        };
        let par_out = par.output.as_tensor().expect("dense vector output");
        assert!(
            got.vals()
                .iter()
                .zip(par_out.vals())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "parallel output must be bit-identical to serial"
        );
        println!(
            "parallel executor ({} threads, two-level: {} spans over {} colors)",
            par.sched.threads, par.sched.spans, par.sched.tasks
        );
        println!(
            "  parallel compute : {:.3} ms wall-clock",
            par.wall_time * 1e3
        );
        println!(
            "  task graph       : {} tasks, {} edges, critical path {}",
            par.sched.tasks, par.sched.edges, par.sched.critical_path
        );
        println!(
            "  split colors     : {} (SplitPolicy::Auto)",
            par.sched.split_tasks
        );
        println!("  steals           : {}", par.sched.steals);
        println!(
            "  critical color   : {:.3} ms measured ({:.2}x the balanced share)",
            par.sched.critical_task_seconds * 1e3,
            par.sched.task_skew()
        );
        println!(
            "  speedup          : {:.2}x over serial compute",
            result.wall_time / par.wall_time.max(1e-12)
        );
        println!("  bit-identical to the serial path ✔");
    }
    Ok(())
}
