//! Sparse tensor factorization workload: the MTTKRP-driven alternating
//! least squares sweep at the heart of CP decomposition — the data-analytics
//! application the paper's introduction motivates (Freebase/FROSTT tensors).
//!
//! Each CP-ALS sweep updates all three factor matrices with one distributed
//! SpMTTKRP per mode (Jacobi-style: every mode reads the *previous* sweep's
//! factors, so the three mode updates are mutually independent). The
//! statements are submitted to a deferred-execution [`Session`]: without
//! `--pipeline` they run launch-at-a-time on the serial executor; with it,
//! the session's dependence analysis proves the three launches independent
//! and drains their point tasks through one work-stealing pass, overlapping
//! whole launches exactly as Legion's deferred execution would — with
//! bit-identical results.
//!
//! ```text
//! cargo run --release --example tensor_factorization
//! cargo run --release --example tensor_factorization -- --pipeline [N_THREADS]
//! cargo run --release --example tensor_factorization -- --skew 1.2 --pipeline
//! ```
//!
//! `--skew <alpha>` sets the Zipf exponent of the tensor's mode-0 slice
//! sizes (`generate::tensor3_skewed`; default 0.8). High alpha concentrates
//! the non-zeros in a few slices, so the blocked distribution hands one
//! color most of the work — the case where the executor's intra-color
//! splitting (spans of the dominant color, stolen by idle workers) shows
//! up directly in the pipelined wall-clock.

use spdistal_repro::sparse::convert::permuted;
use spdistal_repro::sparse::{dense_matrix, generate, reference};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_outer_dim, Plan};

const PIECES: usize = 8;
const RANK: usize = 16;
const DIMS: [usize; 3] = [600, 400, 500];
const NNZ: usize = 200_000;
const SWEEPS: usize = 3;
const DEFAULT_ALPHA: f64 = 0.8;

/// Build the context plus the three mode-update plans. `alpha` is the
/// slice-size Zipf exponent of the input tensor.
fn build(alpha: f64) -> Result<(Context, [Plan; 3]), Box<dyn std::error::Error>> {
    let b = generate::tensor3_skewed(DIMS, NNZ, alpha, 11);
    let mut ctx = Context::new(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()));
    ctx.add_tensor("B0", b.clone(), Format::blocked_csf3())?;
    ctx.add_tensor(
        "B1",
        permuted(&b, &[1, 0, 2], &generate::CSF3),
        Format::blocked_csf3(),
    )?;
    ctx.add_tensor(
        "B2",
        permuted(&b, &[2, 0, 1], &generate::CSF3),
        Format::blocked_csf3(),
    )?;
    // Current factors: replicated (every mode reads them) ...
    for (name, rows, seed) in [("A", DIMS[0], 20), ("C", DIMS[1], 21), ("D", DIMS[2], 22)] {
        ctx.add_tensor(
            name,
            dense_matrix(rows, RANK, generate::dense_buffer(rows, RANK, seed)),
            Format::replicated_dense_matrix(),
        )?;
    }
    // ... next factors: row-blocked outputs, one per mode.
    for (name, rows) in [("Anew", DIMS[0]), ("Cnew", DIMS[1]), ("Dnew", DIMS[2])] {
        ctx.add_tensor(
            name,
            dense_matrix(rows, RANK, vec![0.0; rows * RANK]),
            Format::blocked_dense_matrix(),
        )?;
    }

    // Anew(i,l) = B0(i,j,k) * C(j,l) * D(k,l)   (mode 0)
    // Cnew(j,l) = B1(j,i,k) * A(i,l) * D(k,l)   (mode 1)
    // Dnew(k,l) = B2(k,i,j) * A(i,l) * C(j,l)   (mode 2)
    let mut plans = Vec::new();
    for (out, driver, f1, f2) in [
        ("Anew", "B0", "C", "D"),
        ("Cnew", "B1", "A", "D"),
        ("Dnew", "B2", "A", "C"),
    ] {
        let [m, l, u, v] = ctx.fresh_vars(["m", "l", "u", "v"]);
        let stmt = assign(
            out,
            &[m, l],
            access(driver, &[m, u, v]) * access(f1, &[u, l]) * access(f2, &[v, l]),
        );
        let sched = schedule_outer_dim(&mut ctx, &stmt, PIECES, ParallelUnit::CpuThread);
        plans.push(ctx.compile(&stmt, &sched)?);
    }
    Ok((ctx, plans.try_into().map_err(|_| "three plans").unwrap()))
}

/// Everything one CP-ALS run reports: final factors, compute wall-clock,
/// batch count, and the *modeled* timeline — sequential modeled sum vs.
/// graph-ordered modeled makespan, summed over flushes.
struct RunOutcome {
    finals: Vec<Vec<f64>>,
    wall: f64,
    batches: usize,
    model_seq_sum: f64,
    model_makespan: f64,
}

/// One full CP-ALS run: `SWEEPS` sweeps of three deferred mode updates —
/// overlapped per sweep when `pipelined`, flushed launch-at-a-time when
/// not. Returns the final factor values and the total compute wall-clock.
fn run(
    mode: ExecMode,
    alpha: f64,
    pipelined: bool,
    verify: bool,
) -> Result<RunOutcome, Box<dyn std::error::Error>> {
    let (mut ctx, plans) = build(alpha)?;
    ctx.set_exec_mode(mode);
    let mut session = Session::new(&mut ctx);
    let mut wall = 0.0;
    let mut batches = 0;
    let mut model_seq_sum = 0.0;
    let mut model_makespan = 0.0;
    for sweep in 0..SWEEPS {
        let mut futures: Vec<TensorFuture> = Vec::new();
        for plan in &plans {
            futures.push(session.submit(plan));
            if !pipelined {
                let report = session.flush()?;
                wall += report.wall_seconds;
                batches += report.batches;
                model_seq_sum += report.model_seq_sum();
                model_makespan += report.model_makespan();
            }
        }
        if pipelined {
            let report = session.flush()?;
            wall += report.wall_seconds;
            batches += report.batches;
            model_seq_sum += report.model_seq_sum();
            model_makespan += report.model_makespan();
        }
        if verify {
            // Each mode against the serial oracle with the pre-sweep factors.
            let factor = |name: &str| session.context().tensor(name).unwrap().data.vals().to_vec();
            let (a, c, d) = (factor("A"), factor("C"), factor("D"));
            for (future, (driver, f1, f2)) in
                futures
                    .iter()
                    .zip([("B0", &c, &d), ("B1", &a, &d), ("B2", &a, &c)])
            {
                let b = &session.context().tensor(driver).unwrap().data;
                let expect = reference::spmttkrp(b, f1, f2, RANK);
                let got = session.value(future)?;
                assert!(reference::approx_eq(
                    got.as_tensor().unwrap().vals(),
                    &expect,
                    1e-10
                ));
            }
        }
        if sweep == 0 {
            let mode_name = if pipelined {
                "pipelined"
            } else {
                "launch-at-a-time"
            };
            println!(
                "  {mode_name} sweep 0 launch milestones \
                 (wall ms since session epoch | modeled ms on the simulator):"
            );
            for future in &futures {
                let timing = session.wait(future)?.launches[0].clone();
                println!(
                    "    {:<12} issue {:7.3}  start {:7.3}  drain {:7.3} | \
                     issue {:7.3}  start {:7.3}  finish {:7.3}",
                    timing.name,
                    timing.issue * 1e3,
                    timing.start * 1e3,
                    timing.drain * 1e3,
                    timing.model.issue * 1e3,
                    timing.model.start * 1e3,
                    timing.model.finish * 1e3
                );
            }
        }
        // The least-squares-solve stand-in: damp the new factors and make
        // them the next sweep's inputs (flushes are implicit here).
        for (old, new) in [("A", "Anew"), ("C", "Cnew"), ("D", "Dnew")] {
            let updated: Vec<f64> = session
                .context()
                .tensor(new)
                .unwrap()
                .data
                .vals()
                .iter()
                .map(|v| 0.9 * v + 0.01)
                .collect();
            session
                .tensor_data_mut(old)?
                .vals_mut()
                .copy_from_slice(&updated);
        }
    }
    let finals = ["A", "C", "D"]
        .iter()
        .map(|n| session.context().tensor(n).unwrap().data.vals().to_vec())
        .collect();
    session.finish()?;
    Ok(RunOutcome {
        finals,
        wall,
        batches,
        model_seq_sum,
        model_makespan,
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pipeline_threads: Option<usize> = None;
    let mut alpha = DEFAULT_ALPHA;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--pipeline" => {
                // Bare `--pipeline` means Parallel(0): auto-detect, see
                // the ExecMode::Parallel docs for the policy.
                match args.get(k + 1).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => {
                        pipeline_threads = Some(n);
                        k += 1;
                    }
                    None => pipeline_threads = Some(0),
                }
            }
            "--skew" => {
                alpha = args
                    .get(k + 1)
                    .and_then(|a| a.parse::<f64>().ok())
                    .ok_or("--skew needs a Zipf exponent, e.g. --skew 1.2")?;
                k += 1;
            }
            unknown => {
                eprintln!(
                    "unknown argument '{unknown}' (supported: --pipeline [N], --skew <alpha>)"
                );
                std::process::exit(2);
            }
        }
        k += 1;
    }

    println!(
        "CP-ALS (Jacobi) on a {DIMS:?} tensor (slice skew alpha {alpha}), rank {RANK}, \
         {PIECES} nodes, {SWEEPS} sweeps:\
         \n  3 independent SpMTTKRP mode updates per sweep, deferred via Session"
    );
    let serial = run(ExecMode::Serial, alpha, false, true)?;
    println!(
        "serial launch-at-a-time: compute {:8.3} ms wall-clock \
         ({} batches, all modes verified)",
        serial.wall * 1e3,
        serial.batches
    );

    if let Some(threads) = pipeline_threads {
        let mode = ExecMode::Parallel(threads);
        let lat = run(mode, alpha, false, false)?;
        let pipe = run(mode, alpha, true, false)?;
        for factors in [&lat.finals, &pipe.finals] {
            assert_eq!(serial.finals.len(), factors.len());
            for (s, p) in serial.finals.iter().zip(factors.iter()) {
                assert!(
                    s.iter().zip(p).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "deferred factors must be bit-identical to serial"
                );
            }
        }
        println!(
            "at {} threads: launch-at-a-time {:8.3} ms, pipelined {:8.3} ms \
             ({} batches) -> {:.2}x",
            mode.threads(),
            lat.wall * 1e3,
            pipe.wall * 1e3,
            pipe.batches,
            lat.wall / pipe.wall.max(1e-12)
        );
        println!("  outputs bit-identical to the serial path ✔");
        // The modeled timeline mirrors the wall-clock story: the three
        // independent mode updates of each sweep overlap under the
        // graph-ordered replay, so the pipelined modeled makespan beats the
        // sequential modeled sum.
        assert!(
            pipe.model_makespan < pipe.model_seq_sum,
            "pipelined modeled makespan must undercut the sequential modeled sum \
             ({} vs {})",
            pipe.model_makespan,
            pipe.model_seq_sum
        );
        println!(
            "  modeled (simulated) time: sequential sum {:8.3} ms, \
             graph-ordered makespan {:8.3} ms -> {:.2}x modeled overlap",
            pipe.model_seq_sum * 1e3,
            pipe.model_makespan * 1e3,
            pipe.model_seq_sum / pipe.model_makespan.max(1e-12)
        );
        println!(
            "  (launch-at-a-time flushes modeled {:8.3} ms — no overlap by construction)",
            lat.model_makespan * 1e3
        );
    }
    Ok(())
}
