//! Sparse tensor factorization workload: the MTTKRP-driven alternating
//! least squares sweep at the heart of CP decomposition — the data-analytics
//! application the paper's introduction motivates (Freebase/FROSTT tensors).
//!
//! Each CP-ALS sweep updates all three factor matrices with one distributed
//! SpMTTKRP per mode (Jacobi-style: every mode reads the *previous* sweep's
//! factors, so the three mode updates are mutually independent). The whole
//! sweep is one [`Program`]: three statements built with the `Expr`
//! builders, an explicit outer-dimension schedule each, iterated with
//! [`CompiledProgram::run_iters_with`] — the factor-damping step between
//! sweeps is the between-iteration hook, and the plan cache compiles each
//! (statement, schedule) pair exactly once across every sweep.
//!
//! ```text
//! cargo run --release --example tensor_factorization
//! cargo run --release --example tensor_factorization -- --pipeline [N_THREADS]
//! cargo run --release --example tensor_factorization -- --skew 1.2 --pipeline
//! ```
//!
//! `--skew <alpha>` sets the Zipf exponent of the tensor's mode-0 slice
//! sizes (`generate::tensor3_skewed`; default 0.8). With `--pipeline`, the
//! program's deferred flush proves the three mode updates independent and
//! overlaps them on the work-stealing pool (vs. launch-at-a-time), with
//! bit-identical results and a modeled makespan strictly below the
//! sequential modeled sum.
//!
//! `--trace <path>` (or `SPD_TRACE`) records every run of the session —
//! serial, launch-at-a-time, pipelined — onto one structured trace,
//! written as Chrome trace-event JSON plus a one-line `run_report_json=`
//! metrics summary.

use spdistal_repro::obs;
use spdistal_repro::sparse::convert::permuted;
use spdistal_repro::sparse::{dense_matrix, generate, reference};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign};

const PIECES: usize = 8;
const RANK: usize = 16;
const DIMS: [usize; 3] = [600, 400, 500];
const NNZ: usize = 200_000;
const SWEEPS: usize = 3;
const DEFAULT_ALPHA: f64 = 0.8;

const MODES: [(&str, &str, &str, &str); 3] = [
    ("Anew", "B0", "C", "D"),
    ("Cnew", "B1", "A", "D"),
    ("Dnew", "B2", "A", "C"),
];

/// The whole CP-ALS sweep as one `Program`: three mode-update statements
/// (Anew(i,l) = B0(i,j,k) * C(j,l) * D(k,l) and its permutations), each on
/// the explicit outer-dimension schedule.
fn build(
    alpha: f64,
    mode: ExecMode,
    pipelined: bool,
    trace: &Trace,
) -> Result<CompiledProgram, Box<dyn std::error::Error>> {
    let b = generate::tensor3_skewed(DIMS, NNZ, alpha, 11);
    let mut program = Program::on(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()))
        .exec_mode(mode)
        .trace(trace.clone())
        .tensor("B0", Format::blocked_csf3(), b.clone())
        .tensor(
            "B1",
            Format::blocked_csf3(),
            permuted(&b, &[1, 0, 2], &generate::CSF3),
        )
        .tensor(
            "B2",
            Format::blocked_csf3(),
            permuted(&b, &[2, 0, 1], &generate::CSF3),
        );
    // Current factors: replicated (every mode reads them) ...
    for (name, rows, seed) in [("A", DIMS[0], 20), ("C", DIMS[1], 21), ("D", DIMS[2], 22)] {
        program = program.tensor(
            name,
            Format::replicated_dense_matrix(),
            dense_matrix(rows, RANK, generate::dense_buffer(rows, RANK, seed)),
        );
    }
    // ... next factors: row-blocked outputs, one per mode.
    for (name, rows) in [("Anew", DIMS[0]), ("Cnew", DIMS[1]), ("Dnew", DIMS[2])] {
        program = program.tensor(
            name,
            Format::blocked_dense_matrix(),
            dense_matrix(rows, RANK, vec![0.0; rows * RANK]),
        );
    }
    for (out, driver, f1, f2) in MODES {
        program = program
            .stmt_with(move |vars| {
                let [m, l, u, v] = vars.fresh_n(["m", "l", "u", "v"]);
                assign(
                    out,
                    &[m, l],
                    access(driver, &[m, u, v]) * access(f1, &[u, l]) * access(f2, &[v, l]),
                )
            })
            .schedule(ScheduleSpec::outer_dim());
    }
    if !pipelined {
        program = program.launch_at_a_time();
    }
    Ok(program.build()?)
}

/// Final factor values + the cumulative program report of one run.
type RunOutcome = (Vec<Vec<f64>>, ProgramReport);

/// One full CP-ALS run: `SWEEPS` sweeps of the three-mode program, the
/// damping step as the between-sweep hook. Returns the final factor values
/// and the cumulative program report.
fn run(
    mode: ExecMode,
    alpha: f64,
    pipelined: bool,
    verify: bool,
    trace: &Trace,
) -> Result<RunOutcome, Box<dyn std::error::Error>> {
    let mut program = build(alpha, mode, pipelined, trace)?;
    program.run_iters_with(SWEEPS, |ctx, _sweep| {
        if verify {
            // Each mode against the serial oracle with the pre-sweep
            // factors (the hook runs before they are damped).
            let factor = |name: &str| ctx.tensor(name).unwrap().data.vals().to_vec();
            let (a, c, d) = (factor("A"), factor("C"), factor("D"));
            for ((out, driver, ..), (f1, f2)) in MODES.iter().zip([(&c, &d), (&a, &d), (&a, &c)]) {
                let b = &ctx.tensor(driver).unwrap().data;
                let expect = reference::spmttkrp(b, f1, f2, RANK);
                let got = ctx.tensor(out).unwrap().data.vals();
                assert!(reference::approx_eq(got, &expect, 1e-10));
            }
        }
        // The least-squares-solve stand-in: damp the new factors and make
        // them the next sweep's inputs.
        for (old, new) in [("A", "Anew"), ("C", "Cnew"), ("D", "Dnew")] {
            let updated: Vec<f64> = ctx
                .tensor(new)
                .unwrap()
                .data
                .vals()
                .iter()
                .map(|v| 0.9 * v + 0.01)
                .collect();
            ctx.tensor_data_mut(old)?
                .vals_mut()
                .copy_from_slice(&updated);
        }
        Ok(())
    })?;
    let finals = ["A", "C", "D"]
        .iter()
        .map(|n| program.context().tensor(n).unwrap().data.vals().to_vec())
        .collect();
    Ok((finals, program.report().clone()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pipeline_threads: Option<usize> = None;
    let mut alpha = DEFAULT_ALPHA;
    let mut trace_path: Option<String> = None;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--trace" => {
                trace_path = Some(args.get(k + 1).ok_or("--trace needs a <path>")?.clone());
                k += 1;
            }
            "--pipeline" => {
                // Bare `--pipeline` means Parallel(0): auto-detect, see
                // the ExecMode::Parallel docs for the policy.
                match args.get(k + 1).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => {
                        pipeline_threads = Some(n);
                        k += 1;
                    }
                    None => pipeline_threads = Some(0),
                }
            }
            "--skew" => {
                alpha = args
                    .get(k + 1)
                    .and_then(|a| a.parse::<f64>().ok())
                    .ok_or("--skew needs a Zipf exponent, e.g. --skew 1.2")?;
                k += 1;
            }
            unknown => {
                eprintln!(
                    "unknown argument '{unknown}' (supported: --pipeline [N], --skew <alpha>, \
                     --trace <path>)"
                );
                std::process::exit(2);
            }
        }
        k += 1;
    }
    let trace_path = trace_path.or_else(obs::env_trace_path);
    let trace = if trace_path.is_some() {
        Trace::enabled()
    } else {
        Trace::disabled()
    };

    println!(
        "CP-ALS (Jacobi) on a {DIMS:?} tensor (slice skew alpha {alpha}), rank {RANK}, \
         {PIECES} nodes, {SWEEPS} sweeps:\
         \n  one Program, 3 independent SpMTTKRP mode updates per sweep"
    );
    let (serial_finals, serial) = run(ExecMode::Serial, alpha, false, true, &trace)?;
    println!(
        "serial launch-at-a-time: compute {:8.3} ms wall-clock \
         ({} batches, {} plan compiles + {} cache hits over {} statement runs, \
         all modes verified)",
        serial.wall_seconds * 1e3,
        serial.batches,
        serial.compiles,
        serial.cache_hits,
        serial.compiles + serial.cache_hits,
    );
    assert_eq!(
        serial.compiles, 3,
        "each (stmt, schedule) pair compiles exactly once across sweeps"
    );

    if let Some(threads) = pipeline_threads {
        let mode = ExecMode::Parallel(threads);
        let (lat_finals, lat) = run(mode, alpha, false, false, &trace)?;
        let (pipe_finals, pipe) = run(mode, alpha, true, false, &trace)?;
        for factors in [&lat_finals, &pipe_finals] {
            assert_eq!(serial_finals.len(), factors.len());
            for (s, p) in serial_finals.iter().zip(factors.iter()) {
                assert!(
                    s.iter().zip(p).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "deferred factors must be bit-identical to serial"
                );
            }
        }
        println!(
            "at {} threads: launch-at-a-time {:8.3} ms, pipelined {:8.3} ms \
             ({} batches) -> {:.2}x",
            mode.threads(),
            lat.wall_seconds * 1e3,
            pipe.wall_seconds * 1e3,
            pipe.batches,
            lat.wall_seconds / pipe.wall_seconds.max(1e-12)
        );
        println!("  outputs bit-identical to the serial path ✔");
        println!("  final sweep launch milestones (wall ms | modeled ms):");
        for timing in &pipe.launches {
            println!(
                "    {:<12} issue {:7.3}  start {:7.3}  drain {:7.3} | \
                 issue {:7.3}  start {:7.3}  finish {:7.3}",
                timing.name,
                timing.issue * 1e3,
                timing.start * 1e3,
                timing.drain * 1e3,
                timing.model.issue * 1e3,
                timing.model.start * 1e3,
                timing.model.finish * 1e3
            );
        }
        // The modeled timeline mirrors the wall-clock story: the three
        // independent mode updates of each sweep overlap under the
        // graph-ordered replay, so the pipelined modeled makespan beats the
        // sequential modeled sum.
        assert!(
            pipe.model_makespan < pipe.model_seq_sum,
            "pipelined modeled makespan must undercut the sequential modeled sum \
             ({} vs {})",
            pipe.model_makespan,
            pipe.model_seq_sum
        );
        println!(
            "  modeled (simulated) time: sequential sum {:8.3} ms, \
             graph-ordered makespan {:8.3} ms -> {:.2}x modeled overlap",
            pipe.model_seq_sum * 1e3,
            pipe.model_makespan * 1e3,
            pipe.model_seq_sum / pipe.model_makespan.max(1e-12)
        );
        println!(
            "  (launch-at-a-time flushes modeled {:8.3} ms — no overlap by construction)",
            lat.model_makespan * 1e3
        );
    }

    if let Some(path) = &trace_path {
        trace.write_chrome_trace(path)?;
        println!("chrome trace: wrote {path} (load in Perfetto / chrome://tracing)");
    }
    if trace.is_enabled() {
        println!(
            "run_report_json={}",
            trace.run_report_json("tensor_factorization")
        );
    }
    Ok(())
}
