//! Sparse tensor factorization workload: the MTTKRP-driven alternating
//! least squares sweep at the heart of CP decomposition — the data-analytics
//! application the paper's introduction motivates (Freebase/FROSTT tensors).
//!
//! Runs one mode-0 CP-ALS-style sweep: repeated distributed SpMTTKRP with
//! refreshed factor matrices, chaining compiled plans in one context.
//!
//! ```text
//! cargo run --release --example tensor_factorization
//! ```

use spdistal_repro::sparse::{dense_matrix, generate, reference};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_outer_dim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pieces = 8;
    let rank = 16;
    let dims = [600usize, 400, 500];
    let b = generate::tensor3_skewed(dims, 200_000, 0.8, 11);
    let sweeps = 3;

    let mut ctx = Context::new(Machine::grid1d(pieces, MachineProfile::lassen_cpu()));
    ctx.add_tensor("B", b.clone(), Format::blocked_csf3())?;
    let mut cbuf = generate::dense_buffer(dims[1], rank, 21);
    let mut dbuf = generate::dense_buffer(dims[2], rank, 22);
    ctx.add_tensor(
        "A",
        dense_matrix(dims[0], rank, vec![0.0; dims[0] * rank]),
        Format::blocked_dense_matrix(),
    )?;
    ctx.add_tensor(
        "C",
        dense_matrix(dims[1], rank, cbuf.clone()),
        Format::replicated_dense_matrix(),
    )?;
    ctx.add_tensor(
        "D",
        dense_matrix(dims[2], rank, dbuf.clone()),
        Format::replicated_dense_matrix(),
    )?;

    // A(i,l) = B(i,j,k) * C(j,l) * D(k,l), slice-distributed.
    let [i, l, j, k] = ctx.fresh_vars(["i", "l", "j", "k"]);
    let stmt = assign(
        "A",
        &[i, l],
        access("B", &[i, j, k]) * access("C", &[j, l]) * access("D", &[k, l]),
    );
    let sched = schedule_outer_dim(&mut ctx, &stmt, pieces, ParallelUnit::CpuThread);
    let plan = ctx.compile(&stmt, &sched)?;

    println!(
        "CP-ALS mode-0 sweeps: SpMTTKRP on a {:?} tensor, rank {rank}, {pieces} nodes",
        dims
    );
    let mut total_time = 0.0;
    for sweep in 0..sweeps {
        let result = ctx.run(&plan)?;
        // Verify against the serial oracle with the current factors.
        let expect = reference::spmttkrp(&b, &cbuf, &dbuf, rank);
        let got = result.output.as_tensor().unwrap();
        assert!(reference::approx_eq(got.vals(), &expect, 1e-10));
        total_time += result.time;
        println!(
            "  sweep {sweep}: simulated {:.3} ms, {} comm bytes, ops {:.2e}",
            result.time * 1e3,
            result.comm_bytes,
            result.ops
        );
        // "Update" the factor matrices for the next sweep (a stand-in for
        // the least-squares solve) and push the new values into the context.
        for v in cbuf.iter_mut() {
            *v = 0.9 * *v + 0.01;
        }
        for v in dbuf.iter_mut() {
            *v = 0.9 * *v + 0.01;
        }
        ctx.tensor_data_mut("C")?.vals_mut().copy_from_slice(&cbuf);
        ctx.tensor_data_mut("D")?.vals_mut().copy_from_slice(&dbuf);
    }
    println!("total simulated sweep time: {:.3} ms", total_time * 1e3);
    Ok(())
}
