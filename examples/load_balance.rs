//! Load balance study (Section II-D): row-based vs non-zero-based SpMV on
//! a power-law matrix, through the `Program` front-end.
//!
//! The row-based schedule assigns equal *row ranges* to processors — cheap
//! (no reduction) but imbalanced when rows differ wildly in length. The
//! non-zero-based schedule fuses i and j, moves into B's position space and
//! splits the non-zeros evenly — perfectly balanced, at the cost of
//! reducing into the output across piece boundaries.
//!
//! ```text
//! cargo run --release --example load_balance
//! cargo run --release --example load_balance -- --trace trace.json
//! ```
//!
//! `--trace <path>` (or `SPD_TRACE`) writes a Chrome trace-event file and
//! the run always prints a one-line `run_report_json=` metrics summary,
//! like the other examples.

use spdistal_repro::obs;
use spdistal_repro::sparse::{dense_vector, generate, reference, CooTensor, LevelFormat};
use spdistal_repro::spdistal::prelude::*;

/// A pathologically skewed matrix: a few very dense rows at one end.
fn skewed_matrix(n: usize) -> spdistal_repro::sparse::SpTensor {
    let mut coo = CooTensor::new(vec![n, n]);
    // Rows 0..n/50 are dense-ish; the rest hold a single diagonal entry.
    for i in 0..(n / 50) as i64 {
        for j in 0..(n as i64) / 4 {
            coo.push(&[i, (j * 4 + i) % n as i64], 1.0);
        }
    }
    for i in (n / 50) as i64..n as i64 {
        coo.push(&[i, i], 1.0);
    }
    coo.build(&[LevelFormat::Dense, LevelFormat::Compressed])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--trace" => {
                trace_path = Some(args.get(k + 1).ok_or("--trace needs a <path>")?.clone());
                k += 1;
            }
            unknown => {
                eprintln!("unknown argument '{unknown}' (supported: --trace <path>)");
                std::process::exit(2);
            }
        }
        k += 1;
    }
    let trace_path = trace_path.or_else(obs::env_trace_path);
    let trace = Trace::enabled();

    let pieces = 8;
    let b = skewed_matrix(20_000);
    let n = b.dims()[0];
    let c = generate::dense_vec(n, 3);
    let expect = reference::spmv(&b, &c);

    let mut report = Vec::new();
    let mut last_program = None;
    for (name, nonzero) in [("row-based", false), ("non-zero-based", true)] {
        // Same statement both times; only the format + schedule pair
        // changes — matched data and computation distributions (II-D).
        let (fmt, spec) = if nonzero {
            (Format::nonzero_csr(), ScheduleSpec::nonzero())
        } else {
            (Format::blocked_csr(), ScheduleSpec::outer_dim())
        };
        let mut program = Program::on(Machine::grid1d(pieces, MachineProfile::lassen_cpu()))
            .tensor("a", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
            .tensor("B", fmt, b.clone())
            .tensor("c", Format::replicated_dense_vec(), dense_vector(c.clone()))
            .stmt("a(i) = B(i,j) * c(j)")
            .schedule(spec)
            .trace(trace.clone())
            .build()?;
        program.run()?;
        let result = program.result(0).expect("statement ran");
        assert!(reference::approx_eq(
            result.output.as_tensor().unwrap().vals(),
            &expect,
            1e-12
        ));
        let skew = program.report().stmts[0].task_skew;
        report.push((name, skew, result.time, result.comm_bytes));
        last_program = Some(program);
    }

    println!("SpMV on a skewed matrix, {pieces} simulated nodes:");
    println!(
        "{:<18}{:>12}{:>14}{:>12}",
        "schedule", "task skew", "time (ms)", "comm (B)"
    );
    for (name, skew, time, comm) in &report {
        println!("{:<18}{:>12.3}{:>14.4}{:>12}", name, skew, time * 1e3, comm);
    }
    let speedup = report[0].2 / report[1].2;
    println!("\nnon-zero split is {speedup:.2}x faster here: perfect balance beats the");
    println!("row split's idle processors, even paying boundary reductions.");

    let program = last_program.expect("both schedules ran");
    if let Some(path) = &trace_path {
        program.write_chrome_trace(path)?;
        println!("chrome trace: wrote {path} (load in Perfetto / chrome://tracing)");
    }
    println!(
        "run_report_json={}",
        program.run_report_json("load_balance")
    );
    Ok(())
}
