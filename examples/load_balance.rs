//! Load balance study (Section II-D): row-based vs non-zero-based SpMV on
//! a power-law matrix.
//!
//! The row-based schedule assigns equal *row ranges* to processors — cheap
//! (no reduction) but imbalanced when rows differ wildly in length. The
//! non-zero-based schedule fuses i and j, moves into B's position space and
//! splits the non-zeros evenly — perfectly balanced, at the cost of
//! reducing into the output across piece boundaries.
//!
//! ```text
//! cargo run --release --example load_balance
//! ```

use spdistal_repro::sparse::{dense_vector, reference, CooTensor, LevelFormat};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_nonzero, schedule_outer_dim};

/// A pathologically skewed matrix: a few very dense rows at one end.
fn skewed_matrix(n: usize) -> spdistal_repro::sparse::SpTensor {
    let mut coo = CooTensor::new(vec![n, n]);
    // Rows 0..n/50 are dense-ish; the rest hold a single diagonal entry.
    for i in 0..(n / 50) as i64 {
        for j in 0..(n as i64) / 4 {
            coo.push(&[i, (j * 4 + i) % n as i64], 1.0);
        }
    }
    for i in (n / 50) as i64..n as i64 {
        coo.push(&[i, i], 1.0);
    }
    coo.build(&[LevelFormat::Dense, LevelFormat::Compressed])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pieces = 8;
    let b = skewed_matrix(20_000);
    let n = b.dims()[0];
    let c = spdistal_repro::sparse::generate::dense_vec(n, 3);
    let expect = reference::spmv(&b, &c);

    let mut report = Vec::new();
    for (name, nonzero) in [("row-based", false), ("non-zero-based", true)] {
        let mut ctx = Context::new(Machine::grid1d(pieces, MachineProfile::lassen_cpu()));
        let fmt = if nonzero {
            Format::nonzero_csr()
        } else {
            Format::blocked_csr()
        };
        ctx.add_tensor("a", dense_vector(vec![0.0; n]), Format::blocked_dense_vec())?;
        ctx.add_tensor("B", b.clone(), fmt)?;
        ctx.add_tensor("c", dense_vector(c.clone()), Format::replicated_dense_vec())?;
        let [i, j] = ctx.fresh_vars(["i", "j"]);
        let stmt = assign("a", &[i], access("B", &[i, j]) * access("c", &[j]));
        let sched = if nonzero {
            schedule_nonzero(&mut ctx, &stmt, "B", 2, pieces, ParallelUnit::CpuThread)?
        } else {
            schedule_outer_dim(&mut ctx, &stmt, pieces, ParallelUnit::CpuThread)
        };
        let plan = ctx.compile(&stmt, &sched)?;
        let imbalance = plan
            .inputs
            .iter()
            .find(|p| p.tensor == "B")
            .unwrap()
            .part
            .vals
            .imbalance();
        let result = ctx.run(&plan)?;
        assert!(reference::approx_eq(
            result.output.as_tensor().unwrap().vals(),
            &expect,
            1e-12
        ));
        report.push((
            name,
            imbalance,
            result.time,
            result.comm_bytes,
            plan.output.reduce,
        ));
    }

    println!("SpMV on a skewed matrix, {pieces} simulated nodes:");
    println!(
        "{:<18}{:>12}{:>14}{:>12}{:>10}",
        "schedule", "imbalance", "time (ms)", "comm (B)", "reduce?"
    );
    for (name, imb, time, comm, reduce) in &report {
        println!(
            "{:<18}{:>12.3}{:>14.4}{:>12}{:>10}",
            name,
            imb,
            time * 1e3,
            comm,
            reduce
        );
    }
    let speedup = report[0].2 / report[1].2;
    println!("\nnon-zero split is {speedup:.2}x faster here: perfect balance beats the");
    println!("row split's idle processors, even paying boundary reductions.");
    Ok(())
}
