//! Streaming SpMV: a PageRank-style rank refresh over a mutating graph.
//!
//! ```text
//! cargo run --release --example streaming
//! cargo run --release --example streaming -- --batches 12 --alpha 0.9
//! cargo run --release --example streaming -- --trace trace.json
//! ```
//!
//! One statement — `r(i) = B(i,j) * c(j)`, the rank-estimate refresh of a
//! PageRank iteration with a fixed weight vector — is compiled once and
//! then re-executed as the graph streams in edge-weight updates. Each
//! batch comes from [`generate::delta_stream`]: clustered coordinate
//! overwrites biased toward the hub rows of an R-MAT graph (the same rows
//! a crawler re-visits most). After every batch the program calls
//! `run_incremental()`, which consults the per-row-block dirty bitmap and
//! re-executes only the plan colors whose rows changed, merging into the
//! retained output from the previous run.
//!
//! The table prints, per batch, how many rows were dirty and how many
//! spans the incremental pass re-executed vs skipped. The final rank
//! vector is checked **bit-for-bit** against a from-scratch recompute of
//! the fully-mutated graph — incremental execution is exact, not
//! approximate.
//!
//! `--trace <path>` writes a Chrome trace (the `incremental` category
//! carries one instant event per incremental pass) and prints a
//! `run_report_json=` line whose metrics include the
//! `incremental.{runs,rows_dirty,spans_reexecuted,spans_skipped}`
//! counters that `spd-trace-check --require` can assert on.

use spdistal_repro::obs;
use spdistal_repro::sparse::{dense_vector, generate, reference};
use spdistal_repro::spdistal::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut batches = 8usize;
    let mut alpha = 0.85f64;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--trace" => {
                trace_path = Some(args.get(k + 1).ok_or("--trace needs a <path>")?.clone());
                k += 1;
            }
            "--batches" => {
                batches = args
                    .get(k + 1)
                    .and_then(|n| n.parse().ok())
                    .ok_or("--batches needs a count")?;
                k += 1;
            }
            "--alpha" => {
                alpha = args
                    .get(k + 1)
                    .and_then(|n| n.parse().ok())
                    .ok_or("--alpha needs a value in [0, 1]")?;
                k += 1;
            }
            unknown => {
                eprintln!(
                    "unknown argument '{unknown}' \
                     (supported: --batches <n>, --alpha <a>, --trace <path>)"
                );
                std::process::exit(2);
            }
        }
        k += 1;
    }
    let trace_path = trace_path.or_else(obs::env_trace_path);
    let trace = if trace_path.is_some() {
        Trace::enabled()
    } else {
        Trace::disabled()
    };

    // A clustered R-MAT web graph: hub pages concentrate on low row ids,
    // which is exactly where `delta_stream` clusters its updates.
    let pieces = 4;
    let scale = 9; // 512 pages
    let b = generate::rmat_clustered(scale, 6 * (1 << scale), 0.6, 42);
    let n = b.dims()[0];
    let c = generate::dense_vec(b.dims()[1], 7);

    let mut program = Program::on(Machine::grid1d(pieces, MachineProfile::lassen_cpu()))
        .tensor("r", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
        .tensor("B", Format::blocked_csr(), b.clone())
        .tensor("c", Format::replicated_dense_vec(), dense_vector(c.clone()))
        .stmt("r(i) = B(i,j) * c(j)")
        .schedule(ScheduleSpec::outer_dim())
        .trace(trace)
        .build()?;

    // Cold run: compile the plan, execute everything, retain the output.
    program.run()?;

    // Stream: clustered value updates (~1% of nnz per batch), hub-biased.
    let batch_nnz = (b.nnz() / 100).max(1);
    let stream = generate::delta_stream(&b, alpha, batches, batch_nnz, 1);

    println!(
        "streaming SpMV, {n} pages, {} edges, {pieces} simulated nodes",
        b.nnz()
    );
    println!(
        "{:<8}{:>12}{:>12}{:>14}{:>12}  mode",
        "batch", "deltas", "rows dirty", "spans rerun", "skipped"
    );
    for (i, batch) in stream.iter().enumerate() {
        let rep = program.update_batch("B", batch)?;
        program.run_incremental()?;
        let stats = program.last_incremental(0).expect("one statement ran");
        println!(
            "{:<8}{:>12}{:>12}{:>14}{:>12}  {}",
            i,
            rep.applied(),
            stats.rows_dirty,
            stats.spans_reexecuted,
            stats.spans_skipped,
            if stats.fallback {
                "full"
            } else {
                "incremental"
            }
        );
    }

    // The incremental answer must be *bit-identical* to recomputing the
    // mutated graph from scratch with the same compiled plan.
    let mutated = program.context().tensor("B")?.data.clone();
    let mut full = Program::on(Machine::grid1d(pieces, MachineProfile::lassen_cpu()))
        .tensor("r", Format::blocked_dense_vec(), dense_vector(vec![0.0; n]))
        .tensor("B", Format::blocked_csr(), mutated.clone())
        .tensor("c", Format::replicated_dense_vec(), dense_vector(c.clone()))
        .stmt("r(i) = B(i,j) * c(j)")
        .schedule(ScheduleSpec::outer_dim())
        .build()?;
    full.run()?;
    let got = program.value(0).unwrap().as_tensor().unwrap().vals();
    let want = full.value(0).unwrap().as_tensor().unwrap().vals();
    let identical = got.len() == want.len()
        && got
            .iter()
            .zip(want)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(identical, "incremental result diverged from full recompute");
    assert!(reference::approx_eq(
        got,
        &reference::spmv(&mutated, &c),
        1e-12
    ));
    println!("\nfinal ranks bit-identical to full recompute over the mutated graph");

    if let Some(path) = &trace_path {
        program.write_chrome_trace(path)?;
        println!("chrome trace: wrote {path} (load in Perfetto / chrome://tracing)");
    }
    println!("run_report_json={}", program.run_report_json("streaming"));
    Ok(())
}
