//! Kernel fusion (Section VI, SpAdd3): SpDISTAL compiles
//! `A = B + C + D` into one fused pass with a single assembly, while
//! library baselines compose two binary additions with a materialized
//! temporary — the locality and assembly overhead behind the paper's
//! 11.8x / 38.5x / 19.2x gaps.
//!
//! ```text
//! cargo run --release --example fused_addition
//! ```

use spdistal_repro::baselines::{ctf, petsc, trilinos};
use spdistal_repro::sparse::{generate, reference};
use spdistal_repro::spdistal::prelude::*;
use spdistal_repro::spdistal::{access, assign, schedule_outer_dim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pieces = 8;
    let b = generate::rmat_default(13, 160_000, 31);
    let c = generate::shift_last_dim(&b, 1);
    let d = generate::shift_last_dim(&b, 2);
    let (rows, cols) = (b.dims()[0], b.dims()[1]);
    let machine = Machine::grid1d(pieces, MachineProfile::lassen_cpu());

    // SpDISTAL: one fused, row-distributed pass with two-phase assembly.
    let mut ctx = Context::new(machine.clone());
    ctx.add_tensor("B", b.clone(), Format::blocked_csr())?;
    ctx.add_tensor("C", c.clone(), Format::blocked_csr())?;
    ctx.add_tensor("D", d.clone(), Format::blocked_csr())?;
    ctx.add_tensor(
        "A",
        spdistal_repro::spdistal::plan::empty_csr(rows, cols),
        Format::blocked_csr(),
    )?;
    let [i, j] = ctx.fresh_vars(["i", "j"]);
    let stmt = assign(
        "A",
        &[i, j],
        access("B", &[i, j]) + access("C", &[i, j]) + access("D", &[i, j]),
    );
    let sched = schedule_outer_dim(&mut ctx, &stmt, pieces, ParallelUnit::CpuThread);
    let result = ctx.compile_and_run(&stmt, &sched)?;
    let expect = reference::spadd3(&b, &c, &d);
    assert!(reference::tensors_approx_eq(
        result.output.as_tensor().unwrap(),
        &expect,
        1e-12
    ));

    // Baselines: pairwise composition.
    let (petsc_r, petsc_out) = petsc::spadd3(&machine, &b, &c, &d);
    let (tril_r, _) = trilinos::spadd3(&machine, &b, &c, &d);
    let (ctf_r, _) = ctf::spadd3(&machine, &b, &c, &d);
    assert!(reference::tensors_approx_eq(&petsc_out, &expect, 1e-12));

    println!(
        "A = B + C + D on {pieces} simulated nodes ({} nnz inputs)",
        b.nnz()
    );
    println!("{:<22}{:>14}{:>12}", "system", "time (ms)", "vs SpDISTAL");
    let rows_out = [
        ("SpDISTAL (fused)", result.time),
        ("PETSc (pairwise)", petsc_r.time),
        ("Trilinos (pairwise)", tril_r.time),
        ("CTF (interpreted)", ctf_r.time),
    ];
    for (name, t) in rows_out {
        println!("{:<22}{:>14.4}{:>11.1}x", name, t * 1e3, t / result.time);
    }
    println!("\nfusion avoids the materialized temporary and its second assembly pass.");
    Ok(())
}
