//! Kernel fusion (Section VI, SpAdd3): SpDISTAL compiles
//! `A = B + C + D` into one fused pass with a single assembly, while
//! library baselines compose two binary additions with a materialized
//! temporary — the locality and assembly overhead behind the paper's
//! 11.8x / 38.5x / 19.2x gaps.
//!
//! Two independent fused additions (`A = B + C + D` and `A2 = C + D + E`)
//! form one [`Program`], written as TIN text. Their symbolic + numeric
//! launches touch no common output, so the program's deferred flush
//! overlaps the two whole statements on the work-stealing pool —
//! Legion-style deferred execution — with bit-identical assembled outputs.
//!
//! ```text
//! cargo run --release --example fused_addition
//! cargo run --release --example fused_addition -- --pipeline [N_THREADS]
//! cargo run --release --example fused_addition -- --pipeline --trace trace.json
//! ```
//!
//! `--trace <path>` (or `SPD_TRACE`) records every run onto one structured
//! trace: Chrome trace-event JSON plus a one-line `run_report_json=`
//! metrics summary.

use spdistal_repro::baselines::{ctf, petsc, trilinos};
use spdistal_repro::obs;
use spdistal_repro::sparse::{generate, reference, SpTensor};
use spdistal_repro::spdistal::prelude::*;

const PIECES: usize = 8;

fn build(
    mode: ExecMode,
    pipelined: bool,
    trace: &Trace,
) -> Result<CompiledProgram, Box<dyn std::error::Error>> {
    let b = generate::rmat_default(13, 160_000, 31);
    let c = generate::shift_last_dim(&b, 1);
    let d = generate::shift_last_dim(&b, 2);
    let e = generate::shift_last_dim(&b, 3);
    let (rows, cols) = (b.dims()[0], b.dims()[1]);
    let mut program = Program::on(Machine::grid1d(PIECES, MachineProfile::lassen_cpu()))
        .exec_mode(mode)
        .trace(trace.clone())
        .tensor("B", Format::blocked_csr(), b)
        .tensor("C", Format::blocked_csr(), c)
        .tensor("D", Format::blocked_csr(), d)
        .tensor("E", Format::blocked_csr(), e);
    for out in ["A", "A2"] {
        program = program.tensor(
            out,
            Format::blocked_csr(),
            spdistal_repro::spdistal::plan::empty_csr(rows, cols),
        );
    }
    program = program
        .stmt("A(i,j) = B(i,j) + C(i,j) + D(i,j)")
        .schedule(ScheduleSpec::outer_dim())
        .stmt("A2(i,j) = C(i,j) + D(i,j) + E(i,j)")
        .schedule(ScheduleSpec::outer_dim());
    if !pipelined {
        program = program.launch_at_a_time();
    }
    Ok(program.build()?)
}

/// Run both fused additions under `mode`. Returns the two assembled
/// outputs, the first statement's simulated time, and the program report.
fn run(
    mode: ExecMode,
    pipelined: bool,
    trace: &Trace,
) -> Result<(Vec<SpTensor>, f64, ProgramReport), Box<dyn std::error::Error>> {
    let mut program = build(mode, pipelined, trace)?;
    program.run()?;
    let sim_time = program.result(0).unwrap().time;
    let outputs = (0..program.stmt_count())
        .map(|k| program.value(k).unwrap().as_tensor().unwrap().clone())
        .collect();
    Ok((outputs, sim_time, program.report().clone()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut pipeline_threads: Option<usize> = None;
    let mut trace_path: Option<String> = None;
    let mut k = 0;
    while k < args.len() {
        match args[k].as_str() {
            "--pipeline" => {
                // Bare `--pipeline` means Parallel(0): auto-detect, see
                // the ExecMode::Parallel docs for the policy.
                match args.get(k + 1).and_then(|n| n.parse::<usize>().ok()) {
                    Some(n) => {
                        pipeline_threads = Some(n);
                        k += 1;
                    }
                    None => pipeline_threads = Some(0),
                }
            }
            "--trace" => {
                trace_path = Some(args.get(k + 1).ok_or("--trace needs a <path>")?.clone());
                k += 1;
            }
            unknown => {
                eprintln!(
                    "unknown argument '{unknown}' (supported: --pipeline [N], --trace <path>)"
                );
                std::process::exit(2);
            }
        }
        k += 1;
    }
    let trace_path = trace_path.or_else(obs::env_trace_path);
    let trace = if trace_path.is_some() {
        Trace::enabled()
    } else {
        Trace::disabled()
    };

    // References for both fused statements.
    let b = generate::rmat_default(13, 160_000, 31);
    let c = generate::shift_last_dim(&b, 1);
    let d = generate::shift_last_dim(&b, 2);
    let e = generate::shift_last_dim(&b, 3);
    let expect_a = reference::spadd3(&b, &c, &d);
    let expect_a2 = reference::spadd3(&c, &d, &e);

    let (outputs, sim_time, report) = run(ExecMode::Serial, true, &trace)?;
    assert!(reference::tensors_approx_eq(&outputs[0], &expect_a, 1e-12));
    assert!(reference::tensors_approx_eq(&outputs[1], &expect_a2, 1e-12));
    assert_eq!(report.batches, 1, "independent additions share one batch");

    // Baselines: pairwise composition of the first statement.
    let machine = Machine::grid1d(PIECES, MachineProfile::lassen_cpu());
    let (petsc_r, petsc_out) = petsc::spadd3(&machine, &b, &c, &d);
    let (tril_r, _) = trilinos::spadd3(&machine, &b, &c, &d);
    let (ctf_r, _) = ctf::spadd3(&machine, &b, &c, &d);
    assert!(reference::tensors_approx_eq(&petsc_out, &expect_a, 1e-12));

    println!(
        "A = B + C + D on {PIECES} simulated nodes ({} nnz inputs)",
        b.nnz()
    );
    println!("{:<22}{:>14}{:>12}", "system", "time (ms)", "vs SpDISTAL");
    let rows_out = [
        ("SpDISTAL (fused)", sim_time),
        ("PETSc (pairwise)", petsc_r.time),
        ("Trilinos (pairwise)", tril_r.time),
        ("CTF (interpreted)", ctf_r.time),
    ];
    for (name, t) in rows_out {
        println!("{:<22}{:>14.4}{:>11.1}x", name, t * 1e3, t / sim_time);
    }
    println!("\nfusion avoids the materialized temporary and its second assembly pass.");

    if let Some(threads) = pipeline_threads {
        let mode = ExecMode::Parallel(threads);
        let (lat_outputs, _, lat_report) = run(mode, false, &trace)?;
        let (pipe_outputs, pipe_sim, pipe_report) = run(mode, true, &trace)?;
        for got in [&lat_outputs, &pipe_outputs] {
            for (serial, other) in outputs.iter().zip(got.iter()) {
                assert_eq!(serial.levels(), other.levels(), "assembled structure");
                assert!(
                    serial
                        .vals()
                        .iter()
                        .zip(other.vals())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "deferred assembly must be bit-identical to serial"
                );
            }
        }
        assert_eq!(pipe_sim, sim_time, "simulated time is mode-independent");
        println!(
            "\ndeferred execution ({} threads): both additions overlap in one batch",
            mode.threads()
        );
        println!(
            "  launch-at-a-time compute {:8.3} ms wall-clock ({} batches)",
            lat_report.wall_seconds * 1e3,
            lat_report.batches
        );
        println!(
            "  pipelined        compute {:8.3} ms wall-clock ({} batch, {} steals)",
            pipe_report.wall_seconds * 1e3,
            pipe_report.batches,
            pipe_report.steals
        );
        for t in &pipe_report.launches {
            println!(
                "    {:<10} issue {:7.3}  start {:7.3}  drain {:7.3} (ms since epoch)",
                t.name,
                t.issue * 1e3,
                t.start * 1e3,
                t.drain * 1e3
            );
        }
        println!("  outputs bit-identical to the serial path ✔");
    }

    if let Some(path) = &trace_path {
        trace.write_chrome_trace(path)?;
        println!("chrome trace: wrote {path} (load in Perfetto / chrome://tracing)");
    }
    if trace.is_enabled() {
        println!(
            "run_report_json={}",
            trace.run_report_json("fused_addition")
        );
    }
    Ok(())
}
